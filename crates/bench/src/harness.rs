//! Shared measurement and table-formatting code for the harness binaries.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use unigen::{SampleStats, UniGen, UniGenConfig, UniWit, UniWitConfig, WitnessSampler};
use unigen_circuit::benchmarks::{self, Benchmark};
use unigen_cnf::{CnfFormula, Var, XorClause};
use unigen_hashing::XorHashFamily;
use unigen_satsolver::{enumerate_cell, Budget, GaussMode, Solver, SolverConfig};

/// Aggregate statistics for one sampler on one benchmark — one half of a
/// table row.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerSummary {
    /// Number of samples attempted.
    pub attempts: usize,
    /// Number of samples that produced a witness.
    pub successes: usize,
    /// Average wall-clock time per attempted sample (including preparation
    /// amortised over the attempts, reported separately below).
    pub avg_sample_time: Duration,
    /// Time spent in the sampler's one-off preparation phase.
    pub preparation_time: Duration,
    /// Average xor-clause length over all hash draws.
    pub avg_xor_length: f64,
    /// `true` if the sampler could not even be constructed (corresponds to a
    /// "—" entry in the paper's tables).
    pub failed_to_prepare: bool,
}

impl SamplerSummary {
    /// Observed success probability ("Succ Prob" column).
    pub fn success_probability(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// A summary representing a sampler that failed to prepare within its
    /// budget (a "—" table entry).
    pub fn unavailable() -> Self {
        SamplerSummary {
            attempts: 0,
            successes: 0,
            avg_sample_time: Duration::ZERO,
            preparation_time: Duration::ZERO,
            avg_xor_length: 0.0,
            failed_to_prepare: true,
        }
    }
}

/// One row of Table 1 / Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Number of CNF variables ("|X|").
    pub num_vars: usize,
    /// Sampling-set size ("|S|").
    pub sampling_set_size: usize,
    /// UniGen's results.
    pub unigen: SamplerSummary,
    /// UniWit's results.
    pub uniwit: SamplerSummary,
}

/// Knobs for a table run, kept deliberately small so the harness finishes on
/// a laptop; raise the sample counts to approach the paper's setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableRunConfig {
    /// Number of witnesses requested from UniGen per benchmark.
    pub unigen_samples: usize,
    /// Number of witnesses requested from UniWit per benchmark.
    pub uniwit_samples: usize,
    /// Per-solver-call budget for UniGen.
    pub unigen_budget: Budget,
    /// Per-solver-call budget for UniWit (UniWit needs one: its full-support
    /// xors regularly blow up, which is the paper's point).
    pub uniwit_budget: Budget,
    /// Seed for all randomness in the run.
    pub seed: u64,
}

impl Default for TableRunConfig {
    fn default() -> Self {
        TableRunConfig {
            unigen_samples: 20,
            uniwit_samples: 5,
            unigen_budget: Budget::new().with_time_limit(Duration::from_secs(20)),
            uniwit_budget: Budget::new().with_time_limit(Duration::from_secs(5)),
            seed: 0xdac2014,
        }
    }
}

impl TableRunConfig {
    /// Reads overrides from environment variables (`UNIGEN_SAMPLES`,
    /// `UNIWIT_SAMPLES`, `HARNESS_SEED`), falling back to the defaults.
    pub fn from_env() -> Self {
        let mut config = TableRunConfig::default();
        if let Some(n) = read_env_usize("UNIGEN_SAMPLES") {
            config.unigen_samples = n;
        }
        if let Some(n) = read_env_usize("UNIWIT_SAMPLES") {
            config.uniwit_samples = n;
        }
        if let Some(n) = read_env_usize("HARNESS_SEED") {
            config.seed = n as u64;
        }
        config
    }
}

fn read_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Runs a sampler `count` times and aggregates the outcome statistics.
pub fn measure_sampler<S: WitnessSampler>(
    sampler: &mut S,
    count: usize,
    rng: &mut StdRng,
) -> (usize, SampleStats) {
    let mut totals = SampleStats::default();
    let mut successes = 0usize;
    for _ in 0..count {
        let outcome = sampler.sample(rng);
        if outcome.is_success() {
            successes += 1;
        }
        totals.accumulate(&outcome.stats);
    }
    (successes, totals)
}

/// Measures UniGen on one benchmark.
pub fn measure_unigen(benchmark: &Benchmark, run: &TableRunConfig) -> SamplerSummary {
    let config = UniGenConfig::default()
        .with_seed(run.seed)
        .with_bsat_budget(run.unigen_budget);
    let prep_start = Instant::now();
    let sampler = UniGen::new(&benchmark.formula, config);
    let preparation_time = prep_start.elapsed();
    let mut sampler = match sampler {
        Ok(sampler) => sampler,
        Err(_) => return SamplerSummary::unavailable(),
    };
    let mut rng = StdRng::seed_from_u64(run.seed ^ 0x1111);
    let (successes, stats) = measure_sampler(&mut sampler, run.unigen_samples, &mut rng);
    SamplerSummary {
        attempts: run.unigen_samples,
        successes,
        avg_sample_time: average_duration(stats.wall_time, run.unigen_samples),
        preparation_time,
        avg_xor_length: stats.average_xor_length(),
        failed_to_prepare: false,
    }
}

/// Measures UniWit on one benchmark.
pub fn measure_uniwit(benchmark: &Benchmark, run: &TableRunConfig) -> SamplerSummary {
    let config = UniWitConfig {
        bsat_budget: run.uniwit_budget,
        ..UniWitConfig::default()
    };
    let prep_start = Instant::now();
    let sampler = UniWit::new(&benchmark.formula, config);
    let preparation_time = prep_start.elapsed();
    let mut sampler = match sampler {
        Ok(sampler) => sampler,
        Err(_) => return SamplerSummary::unavailable(),
    };
    let mut rng = StdRng::seed_from_u64(run.seed ^ 0x2222);
    let (successes, stats) = measure_sampler(&mut sampler, run.uniwit_samples, &mut rng);
    SamplerSummary {
        attempts: run.uniwit_samples,
        successes,
        avg_sample_time: average_duration(stats.wall_time, run.uniwit_samples),
        preparation_time,
        avg_xor_length: stats.average_xor_length(),
        failed_to_prepare: false,
    }
}

fn average_duration(total: Duration, count: usize) -> Duration {
    if count == 0 {
        Duration::ZERO
    } else {
        total / count as u32
    }
}

/// Runs the full comparison over a suite of benchmarks.
pub fn run_table(suite: &[Benchmark], run: &TableRunConfig) -> Vec<TableRow> {
    suite
        .iter()
        .map(|benchmark| TableRow {
            name: benchmark.name.clone(),
            num_vars: benchmark.num_vars(),
            sampling_set_size: benchmark.sampling_set_size(),
            unigen: measure_unigen(benchmark, run),
            uniwit: measure_uniwit(benchmark, run),
        })
        .collect()
}

/// Formats a duration as seconds with millisecond resolution.
pub fn format_seconds(duration: Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

fn summary_cells(summary: &SamplerSummary) -> (String, String, String) {
    if summary.failed_to_prepare || summary.attempts == 0 {
        ("-".into(), "-".into(), "-".into())
    } else {
        (
            format!("{:.2}", summary.success_probability()),
            format_seconds(summary.avg_sample_time),
            format!("{:.1}", summary.avg_xor_length),
        )
    }
}

/// Renders the table in the layout of the paper's Table 1 / Table 2.
pub fn render_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>7} {:>5} | {:>9} {:>12} {:>8} | {:>9} {:>12} {:>8}\n",
        "Benchmark",
        "|X|",
        "|S|",
        "UG succ",
        "UG time(s)",
        "UG xlen",
        "UW succ",
        "UW time(s)",
        "UW xlen"
    ));
    out.push_str(&"-".repeat(110));
    out.push('\n');
    for row in rows {
        let (ug_succ, ug_time, ug_xlen) = summary_cells(&row.unigen);
        let (uw_succ, uw_time, uw_xlen) = summary_cells(&row.uniwit);
        out.push_str(&format!(
            "{:<20} {:>7} {:>5} | {:>9} {:>12} {:>8} | {:>9} {:>12} {:>8}\n",
            row.name,
            row.num_vars,
            row.sampling_set_size,
            ug_succ,
            ug_time,
            ug_xlen,
            uw_succ,
            uw_time,
            uw_xlen
        ));
    }
    out
}

/// Renders the rows as CSV (one header line plus one line per row), for
/// post-processing or plotting.
pub fn render_csv(rows: &[TableRow]) -> String {
    let mut out = String::from(
        "benchmark,num_vars,sampling_set,unigen_succ_prob,unigen_avg_time_s,unigen_avg_xor_len,unigen_prep_s,uniwit_succ_prob,uniwit_avg_time_s,uniwit_avg_xor_len\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.6},{:.2},{:.6},{:.4},{:.6},{:.2}\n",
            row.name,
            row.num_vars,
            row.sampling_set_size,
            row.unigen.success_probability(),
            row.unigen.avg_sample_time.as_secs_f64(),
            row.unigen.avg_xor_length,
            row.unigen.preparation_time.as_secs_f64(),
            row.uniwit.success_probability(),
            row.uniwit.avg_sample_time.as_secs_f64(),
            row.uniwit.avg_xor_length,
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Incremental-vs-scratch BSAT benchmark (`BENCH_incremental.json`)
// ---------------------------------------------------------------------------

/// Aggregate solver-work measurements of one enumeration mode over a fixed
/// sequence of hash cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellLoopMeasurement {
    /// Total wall-clock time for the whole cell sequence.
    pub seconds: f64,
    /// Wall-clock time per cell (≈ per sample, since UniGen issues roughly
    /// one accepted cell per sample).
    pub seconds_per_cell: f64,
    /// Unit propagations per `BSAT` call.
    pub propagations_per_call: f64,
    /// Conflicts per `BSAT` call.
    pub conflicts_per_call: f64,
    /// Total witnesses enumerated (sanity check across modes).
    pub witnesses: usize,
    /// Order-independent fingerprint of every (projected) witness of every
    /// cell, so the modes are compared on the actual witness *sets*, not
    /// just their sizes.
    pub witness_fingerprint: u64,
}

/// One instance's incremental-vs-scratch comparison, with a Gauss–Jordan
/// on/off ablation of the incremental mode.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalComparison {
    /// Benchmark instance name.
    pub name: String,
    /// Number of CNF variables.
    pub num_vars: usize,
    /// Sampling-set size.
    pub sampling_set_size: usize,
    /// Number of hash cells enumerated (identical layers in all modes).
    pub cells: usize,
    /// Rebuilding a fresh solver per cell (the pre-incremental behaviour).
    pub scratch: CellLoopMeasurement,
    /// One persistent solver with guard-scoped cells (the default
    /// configuration, i.e. Gauss–Jordan auto-enabled on wide layers).
    pub incremental: CellLoopMeasurement,
    /// The same persistent-solver loop with Gauss–Jordan forced off
    /// (watched-variable xor propagation only) — the ablation column.
    pub incremental_nogauss: CellLoopMeasurement,
}

impl IncrementalComparison {
    /// Scratch time divided by incremental time (> 1 means the incremental
    /// path is faster).
    pub fn speedup(&self) -> f64 {
        if self.incremental.seconds > 0.0 {
            self.scratch.seconds / self.incremental.seconds
        } else {
            f64::INFINITY
        }
    }

    /// Scratch time divided by the gauss-off incremental time.
    pub fn nogauss_speedup(&self) -> f64 {
        if self.incremental_nogauss.seconds > 0.0 {
            self.scratch.seconds / self.incremental_nogauss.seconds
        } else {
            f64::INFINITY
        }
    }

    /// Gauss-off conflicts per call divided by gauss-on conflicts per call
    /// (> 1 means the matrix propagation avoided conflicts).
    pub fn gauss_conflict_reduction(&self) -> f64 {
        if self.incremental.conflicts_per_call > 0.0 {
            self.incremental_nogauss.conflicts_per_call / self.incremental.conflicts_per_call
        } else {
            f64::INFINITY
        }
    }

    /// `true` when all modes enumerated identical witness *sets* per cell
    /// (they solve the same deterministic cell sequence, so anything else is
    /// a solver bug).
    pub fn witnesses_match(&self) -> bool {
        self.scratch.witnesses == self.incremental.witnesses
            && self.scratch.witness_fingerprint == self.incremental.witness_fingerprint
            && self.scratch.witnesses == self.incremental_nogauss.witnesses
            && self.scratch.witness_fingerprint == self.incremental_nogauss.witness_fingerprint
    }
}

/// Parameters of an incremental-vs-scratch run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncrementalBenchConfig {
    /// Hash layers drawn per width of the probed operating window.
    pub cells_per_width: usize,
    /// Number of widths in the operating window (UniGen works `{q−3…q}`,
    /// i.e. a window of 4).
    pub width_window: usize,
    /// Enumeration bound per cell (the paper's `hiThresh`-style cap).
    pub bound: usize,
    /// Seed for the hash draws.
    pub seed: u64,
}

impl Default for IncrementalBenchConfig {
    fn default() -> Self {
        IncrementalBenchConfig {
            cells_per_width: 6,
            width_window: 4,
            bound: 47,
            seed: 0xdac2014,
        }
    }
}

/// The full report emitted as `BENCH_incremental.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalReport {
    /// The run parameters.
    pub config: IncrementalBenchConfig,
    /// Per-instance comparisons.
    pub instances: Vec<IncrementalComparison>,
}

impl IncrementalReport {
    /// Geometric mean of the per-instance speedups.
    pub fn geometric_mean_speedup(&self) -> f64 {
        if self.instances.is_empty() {
            return 1.0;
        }
        let log_sum: f64 = self.instances.iter().map(|i| i.speedup().ln()).sum();
        (log_sum / self.instances.len() as f64).exp()
    }
}

/// The instances used for the committed perf baseline: one representative of
/// each structurally distinct family, sized so the whole comparison runs in
/// seconds.
pub fn incremental_bench_suite() -> Vec<Benchmark> {
    vec![
        benchmarks::parity_chain("case121-like", 16, 4, 12, 0x0121),
        benchmarks::iscas_like("s526-like", 14, 180, 11, 0x0526),
        benchmarks::squaring("squaring8-like", 8, 6, 0x0808),
        benchmarks::squaring("squaring10-like", 10, 8, 0x0a10),
        benchmarks::long_chain("llreverse-like", 12, 60, 5, 0x11ef),
        benchmarks::sorter("sort4x4-like", 4, 4, 6, 0x5047),
        benchmarks::login_like("login3x6-like", 3, 6, 0x1061),
    ]
    .into_iter()
    .chain(crate::corpus::incremental_corpus_rows())
    .collect()
}

/// Finds the instance's *operating width*: the smallest hash width whose
/// random cell fits within the enumeration bound. UniGen's per-sample loop
/// only ever works the window `{q−3…q}` around this width (Algorithm 1,
/// lines 12–17), so the timed workload is drawn there — cells much wider or
/// narrower never recur in a real sampling run.
fn probe_operating_width(
    benchmark: &Benchmark,
    family: &XorHashFamily,
    bound: usize,
    rng: &mut StdRng,
) -> usize {
    let sampling = benchmark.formula.sampling_set_or_all();
    let mut solver = Solver::from_formula(&benchmark.formula);
    for width in 1..=sampling.len() {
        let layer = family.sample(width, rng).to_xor_clauses();
        let outcome = enumerate_cell(&mut solver, &sampling, &layer, bound + 1, &Budget::new());
        if outcome.len() <= bound {
            return width;
        }
    }
    sampling.len()
}

/// Draws the deterministic hash-layer sequence both modes will enumerate:
/// `cells_per_width` cells at each width of the 4-wide UniGen window ending
/// at `max_width` (already clamped by the caller).
fn draw_layers(
    family: &XorHashFamily,
    sampling_len: usize,
    operating_width: usize,
    config: &IncrementalBenchConfig,
    rng: &mut StdRng,
) -> Vec<Vec<XorClause>> {
    let hi = operating_width.min(sampling_len).max(1) + 1;
    let lo = hi.saturating_sub(config.width_window).max(1);
    let mut layers = Vec::new();
    for width in lo..=hi.min(sampling_len) {
        for _ in 0..config.cells_per_width {
            layers.push(family.sample(width, rng).to_xor_clauses());
        }
    }
    layers
}

/// Folds one cell's outcome into an order-independent fingerprint: the cell
/// index and witness count always contribute; the projected witnesses
/// themselves contribute only when the cell was enumerated exhaustively —
/// on a bound-capped cell the two modes legitimately pick different
/// (equally valid) subsets, so only the count is comparable there.
fn fold_cell(
    acc: u64,
    cell_index: usize,
    witnesses: &[unigen_cnf::Model],
    exhaustive: bool,
    sampling: &[Var],
) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut acc = acc;
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    (cell_index, witnesses.len(), exhaustive).hash(&mut hasher);
    acc ^= hasher.finish();
    if exhaustive {
        for model in witnesses {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            cell_index.hash(&mut hasher);
            for &v in sampling {
                model.value(v).hash(&mut hasher);
            }
            acc ^= hasher.finish();
        }
    }
    acc
}

/// One persistent-solver pass over the deterministic layer sequence, with
/// the given solver configuration (the gauss on/off ablation knob).
fn measure_guarded_loop(
    formula: &CnfFormula,
    sampling: &[Var],
    layers: &[Vec<XorClause>],
    bound: usize,
    budget: &Budget,
    solver_config: SolverConfig,
) -> CellLoopMeasurement {
    let calls = layers.len().max(1) as f64;
    let started = Instant::now();
    let mut solver = Solver::from_formula_with_config(formula, solver_config);
    let mut witnesses = 0usize;
    let mut fingerprint = 0u64;
    for (cell_index, layer) in layers.iter().enumerate() {
        let outcome = enumerate_cell(&mut solver, sampling, layer, bound, budget);
        witnesses += outcome.len();
        fingerprint = fold_cell(
            fingerprint,
            cell_index,
            &outcome.witnesses,
            outcome.is_exhaustive(),
            sampling,
        );
    }
    let seconds = started.elapsed().as_secs_f64();
    CellLoopMeasurement {
        seconds,
        seconds_per_cell: seconds / calls,
        propagations_per_call: solver.stats().propagations as f64 / calls,
        conflicts_per_call: solver.stats().conflicts as f64 / calls,
        witnesses,
        witness_fingerprint: fingerprint,
    }
}

/// Runs the incremental-vs-scratch comparison on one instance.
pub fn measure_incremental_comparison(
    benchmark: &Benchmark,
    config: &IncrementalBenchConfig,
) -> IncrementalComparison {
    let formula = &benchmark.formula;
    let sampling = formula.sampling_set_or_all();
    let family = XorHashFamily::new(sampling.clone());
    let mut rng = StdRng::seed_from_u64(config.seed);
    let operating_width = probe_operating_width(benchmark, &family, config.bound, &mut rng);
    let layers = draw_layers(&family, sampling.len(), operating_width, config, &mut rng);
    let budget = Budget::new();
    let calls = layers.len().max(1) as f64;

    // Incremental: one solver, guard-scoped cells — once with the default
    // configuration (Gauss–Jordan auto) and once with the matrices off.
    let incremental = measure_guarded_loop(
        formula,
        &sampling,
        &layers,
        config.bound,
        &budget,
        SolverConfig::default(),
    );
    let incremental_nogauss = measure_guarded_loop(
        formula,
        &sampling,
        &layers,
        config.bound,
        &budget,
        SolverConfig {
            gauss: GaussMode::Off,
            ..SolverConfig::default()
        },
    );

    // Scratch: the seed codebase's behaviour, reproduced exactly — clone the
    // formula, rebuild a solver for every cell, and solve cold (from level
    // zero) for every witness, blocking with a plain added clause.
    let started = Instant::now();
    let mut scratch_witnesses = 0usize;
    let mut scratch_fingerprint = 0u64;
    let mut scratch_propagations = 0u64;
    let mut scratch_conflicts = 0u64;
    for (cell_index, layer) in layers.iter().enumerate() {
        let mut hashed = formula.clone();
        for xor in layer {
            hashed
                .add_xor_clause(xor.clone())
                .expect("hash clauses stay within the variable range");
        }
        let mut fresh = Solver::from_formula(&hashed);
        let mut cell_witnesses: Vec<unigen_cnf::Model> = Vec::new();
        let mut exhausted = false;
        while cell_witnesses.len() < config.bound {
            match fresh.solve_with_budget(&budget) {
                unigen_satsolver::SolveResult::Sat(model) => {
                    let blocking: Vec<unigen_cnf::Lit> = model
                        .project(&sampling)
                        .to_lits()
                        .iter()
                        .map(|&l| !l)
                        .collect();
                    fresh.add_clause(unigen_cnf::Clause::new(blocking));
                    cell_witnesses.push(model);
                }
                unigen_satsolver::SolveResult::Unsat => {
                    exhausted = true;
                    break;
                }
                unigen_satsolver::SolveResult::Unknown
                | unigen_satsolver::SolveResult::Interrupted(_) => break,
            }
        }
        scratch_witnesses += cell_witnesses.len();
        scratch_fingerprint = fold_cell(
            scratch_fingerprint,
            cell_index,
            &cell_witnesses,
            exhausted,
            &sampling,
        );
        scratch_propagations += fresh.stats().propagations;
        scratch_conflicts += fresh.stats().conflicts;
    }
    let scratch_seconds = started.elapsed().as_secs_f64();
    let scratch = CellLoopMeasurement {
        seconds: scratch_seconds,
        seconds_per_cell: scratch_seconds / calls,
        propagations_per_call: scratch_propagations as f64 / calls,
        conflicts_per_call: scratch_conflicts as f64 / calls,
        witnesses: scratch_witnesses,
        witness_fingerprint: scratch_fingerprint,
    };

    IncrementalComparison {
        name: benchmark.name.clone(),
        num_vars: benchmark.num_vars(),
        sampling_set_size: benchmark.sampling_set_size(),
        cells: layers.len(),
        scratch,
        incremental,
        incremental_nogauss,
    }
}

/// Runs the comparison over a suite.
pub fn run_incremental_bench(
    suite: &[Benchmark],
    config: &IncrementalBenchConfig,
) -> IncrementalReport {
    IncrementalReport {
        config: *config,
        instances: suite
            .iter()
            .map(|b| measure_incremental_comparison(b, config))
            .collect(),
    }
}

/// Formats a ratio for the hand-rolled JSON: division by a zero denominator
/// yields `f64::INFINITY` (e.g. zero conflicts in the gauss-on loop), which
/// `{:.3}` would render as the invalid JSON token `inf` — emit `null`
/// instead so the document stays machine-readable.
fn json_ratio(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.3}")
    } else {
        "null".to_string()
    }
}

fn json_measurement(m: &CellLoopMeasurement) -> String {
    format!(
        "{{\"seconds\": {:.6}, \"seconds_per_cell\": {:.6}, \"propagations_per_call\": {:.1}, \"conflicts_per_call\": {:.1}, \"witnesses\": {}}}",
        m.seconds, m.seconds_per_cell, m.propagations_per_call, m.conflicts_per_call, m.witnesses
    )
}

/// Renders the report as the machine-readable `BENCH_incremental.json`
/// document (hand-rolled JSON; instance names are plain ASCII).
pub fn render_incremental_json(report: &IncrementalReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"incremental_vs_scratch_bsat\",\n");
    out.push_str(&format!(
        "  \"config\": {{\"cells_per_width\": {}, \"width_window\": {}, \"bound\": {}, \"seed\": {}}},\n",
        report.config.cells_per_width,
        report.config.width_window,
        report.config.bound,
        report.config.seed
    ));
    out.push_str(&format!(
        "  \"geometric_mean_speedup\": {},\n",
        json_ratio(report.geometric_mean_speedup())
    ));
    out.push_str("  \"instances\": [\n");
    for (i, instance) in report.instances.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"num_vars\": {}, \"sampling_set\": {}, \"cells\": {}, \"speedup\": {}, \"nogauss_speedup\": {}, \"gauss_conflict_reduction\": {}, \"witnesses_match\": {},\n",
            instance.name,
            instance.num_vars,
            instance.sampling_set_size,
            instance.cells,
            json_ratio(instance.speedup()),
            json_ratio(instance.nogauss_speedup()),
            json_ratio(instance.gauss_conflict_reduction()),
            instance.witnesses_match()
        ));
        out.push_str(&format!(
            "     \"scratch\": {},\n     \"incremental\": {},\n     \"incremental_nogauss\": {}}}{}\n",
            json_measurement(&instance.scratch),
            json_measurement(&instance.incremental),
            json_measurement(&instance.incremental_nogauss),
            if i + 1 < report.instances.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts the committed `geometric_mean_speedup` from a previously written
/// `BENCH_incremental.json` document (the perf-trajectory baseline the CI
/// gate compares against). Hand-rolled to match the hand-rolled writer; the
/// workspace deliberately has no JSON dependency.
pub fn parse_baseline_geomean(json: &str) -> Option<f64> {
    let key = "\"geometric_mean_speedup\":";
    let start = json.find(key)? + key.len();
    let rest = json[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_circuit::benchmarks;

    #[test]
    fn summary_probability_handles_zero_attempts() {
        assert_eq!(SamplerSummary::unavailable().success_probability(), 0.0);
    }

    #[test]
    fn table_row_rendering_contains_benchmark_names() {
        let rows = vec![TableRow {
            name: "demo".into(),
            num_vars: 100,
            sampling_set_size: 10,
            unigen: SamplerSummary {
                attempts: 4,
                successes: 4,
                avg_sample_time: Duration::from_millis(12),
                preparation_time: Duration::from_millis(100),
                avg_xor_length: 5.0,
                failed_to_prepare: false,
            },
            uniwit: SamplerSummary::unavailable(),
        }];
        let text = render_table(&rows);
        assert!(text.contains("demo"));
        assert!(text.contains("1.00"));
        assert!(text.contains('-'));
        let csv = render_csv(&rows);
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("demo,100,10"));
    }

    #[test]
    fn measuring_a_tiny_benchmark_end_to_end() {
        // A small instance keeps this unit test fast while exercising the
        // full measurement path.
        let benchmark = benchmarks::parity_chain("harness-smoke", 8, 2, 2, 3);
        let run = TableRunConfig {
            unigen_samples: 3,
            uniwit_samples: 2,
            ..TableRunConfig::default()
        };
        let row = &run_table(std::slice::from_ref(&benchmark), &run)[0];
        assert_eq!(row.name, "harness-smoke");
        assert!(row.unigen.attempts == 3);
        assert!(row.unigen.successes >= 1);
    }

    #[test]
    fn env_overrides_are_optional() {
        let config = TableRunConfig::from_env();
        assert!(config.unigen_samples > 0);
    }

    #[test]
    fn incremental_comparison_modes_agree_on_witness_counts() {
        let benchmark = benchmarks::parity_chain("inc-smoke", 8, 2, 2, 3);
        let config = IncrementalBenchConfig {
            cells_per_width: 1,
            width_window: 3,
            bound: 16,
            seed: 9,
        };
        let comparison = measure_incremental_comparison(&benchmark, &config);
        assert!(comparison.witnesses_match(), "{comparison:?}");
        assert!(comparison.cells >= 1 && comparison.cells <= 3);
        assert!(comparison.incremental.seconds >= 0.0);
    }

    #[test]
    fn incremental_json_is_well_formed_enough() {
        let benchmark = benchmarks::parity_chain("inc-json", 8, 2, 2, 4);
        let config = IncrementalBenchConfig {
            cells_per_width: 1,
            width_window: 2,
            bound: 8,
            seed: 5,
        };
        let report = run_incremental_bench(std::slice::from_ref(&benchmark), &config);
        let json = render_incremental_json(&report);
        assert!(json.contains("\"incremental_vs_scratch_bsat\""));
        assert!(json.contains("\"inc-json\""));
        assert!(json.contains("geometric_mean_speedup"));
        assert!(json.contains("\"incremental_nogauss\""));
        assert!(json.contains("\"gauss_conflict_reduction\""));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        // The perf gate reads its baseline back out of exactly this format.
        let geomean = parse_baseline_geomean(&json).expect("geomean parses back");
        assert!((geomean - report.geometric_mean_speedup()).abs() < 0.001);
    }

    #[test]
    fn infinite_ratios_render_as_null_not_inf() {
        assert_eq!(json_ratio(2.5), "2.500");
        assert_eq!(json_ratio(f64::INFINITY), "null");
        assert_eq!(json_ratio(f64::NAN), "null");

        // A gauss-on loop with zero conflicts (the matrices' best case)
        // must not corrupt the machine-readable report.
        let perfect = CellLoopMeasurement {
            seconds: 0.5,
            seconds_per_cell: 0.05,
            propagations_per_call: 10.0,
            conflicts_per_call: 0.0,
            witnesses: 4,
            witness_fingerprint: 1,
        };
        let report = IncrementalReport {
            config: IncrementalBenchConfig::default(),
            instances: vec![IncrementalComparison {
                name: "zero-conflicts".into(),
                num_vars: 4,
                sampling_set_size: 4,
                cells: 1,
                scratch: CellLoopMeasurement {
                    conflicts_per_call: 7.0,
                    ..perfect
                },
                incremental: perfect,
                incremental_nogauss: CellLoopMeasurement {
                    conflicts_per_call: 7.0,
                    ..perfect
                },
            }],
        };
        let json = render_incremental_json(&report);
        assert!(json.contains("\"gauss_conflict_reduction\": null"));
        assert!(!json.contains("inf"), "invalid JSON token in {json}");
    }

    #[test]
    fn baseline_geomean_parsing_is_robust() {
        assert_eq!(
            parse_baseline_geomean("{\"geometric_mean_speedup\": 2.337,\n"),
            Some(2.337)
        );
        assert_eq!(
            parse_baseline_geomean("{ \"geometric_mean_speedup\":1.0}"),
            Some(1.0)
        );
        assert_eq!(parse_baseline_geomean("{}"), None);
        assert_eq!(
            parse_baseline_geomean("\"geometric_mean_speedup\": x"),
            None
        );
    }
}
