//! Shared measurement and table-formatting code for the harness binaries.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use unigen::{SampleStats, UniGen, UniGenConfig, UniWit, UniWitConfig, WitnessSampler};
use unigen_circuit::benchmarks::Benchmark;
use unigen_satsolver::Budget;

/// Aggregate statistics for one sampler on one benchmark — one half of a
/// table row.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerSummary {
    /// Number of samples attempted.
    pub attempts: usize,
    /// Number of samples that produced a witness.
    pub successes: usize,
    /// Average wall-clock time per attempted sample (including preparation
    /// amortised over the attempts, reported separately below).
    pub avg_sample_time: Duration,
    /// Time spent in the sampler's one-off preparation phase.
    pub preparation_time: Duration,
    /// Average xor-clause length over all hash draws.
    pub avg_xor_length: f64,
    /// `true` if the sampler could not even be constructed (corresponds to a
    /// "—" entry in the paper's tables).
    pub failed_to_prepare: bool,
}

impl SamplerSummary {
    /// Observed success probability ("Succ Prob" column).
    pub fn success_probability(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// A summary representing a sampler that failed to prepare within its
    /// budget (a "—" table entry).
    pub fn unavailable() -> Self {
        SamplerSummary {
            attempts: 0,
            successes: 0,
            avg_sample_time: Duration::ZERO,
            preparation_time: Duration::ZERO,
            avg_xor_length: 0.0,
            failed_to_prepare: true,
        }
    }
}

/// One row of Table 1 / Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Number of CNF variables ("|X|").
    pub num_vars: usize,
    /// Sampling-set size ("|S|").
    pub sampling_set_size: usize,
    /// UniGen's results.
    pub unigen: SamplerSummary,
    /// UniWit's results.
    pub uniwit: SamplerSummary,
}

/// Knobs for a table run, kept deliberately small so the harness finishes on
/// a laptop; raise the sample counts to approach the paper's setup.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableRunConfig {
    /// Number of witnesses requested from UniGen per benchmark.
    pub unigen_samples: usize,
    /// Number of witnesses requested from UniWit per benchmark.
    pub uniwit_samples: usize,
    /// Per-solver-call budget for UniGen.
    pub unigen_budget: Budget,
    /// Per-solver-call budget for UniWit (UniWit needs one: its full-support
    /// xors regularly blow up, which is the paper's point).
    pub uniwit_budget: Budget,
    /// Seed for all randomness in the run.
    pub seed: u64,
}

impl Default for TableRunConfig {
    fn default() -> Self {
        TableRunConfig {
            unigen_samples: 20,
            uniwit_samples: 5,
            unigen_budget: Budget::new().with_time_limit(Duration::from_secs(20)),
            uniwit_budget: Budget::new().with_time_limit(Duration::from_secs(5)),
            seed: 0xdac2014,
        }
    }
}

impl TableRunConfig {
    /// Reads overrides from environment variables (`UNIGEN_SAMPLES`,
    /// `UNIWIT_SAMPLES`, `HARNESS_SEED`), falling back to the defaults.
    pub fn from_env() -> Self {
        let mut config = TableRunConfig::default();
        if let Some(n) = read_env_usize("UNIGEN_SAMPLES") {
            config.unigen_samples = n;
        }
        if let Some(n) = read_env_usize("UNIWIT_SAMPLES") {
            config.uniwit_samples = n;
        }
        if let Some(n) = read_env_usize("HARNESS_SEED") {
            config.seed = n as u64;
        }
        config
    }
}

fn read_env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

/// Runs a sampler `count` times and aggregates the outcome statistics.
pub fn measure_sampler<S: WitnessSampler>(
    sampler: &mut S,
    count: usize,
    rng: &mut StdRng,
) -> (usize, SampleStats) {
    let mut totals = SampleStats::default();
    let mut successes = 0usize;
    for _ in 0..count {
        let outcome = sampler.sample(rng);
        if outcome.is_success() {
            successes += 1;
        }
        totals.accumulate(&outcome.stats);
    }
    (successes, totals)
}

/// Measures UniGen on one benchmark.
pub fn measure_unigen(benchmark: &Benchmark, run: &TableRunConfig) -> SamplerSummary {
    let config = UniGenConfig::default()
        .with_seed(run.seed)
        .with_bsat_budget(run.unigen_budget);
    let prep_start = Instant::now();
    let sampler = UniGen::new(&benchmark.formula, config);
    let preparation_time = prep_start.elapsed();
    let mut sampler = match sampler {
        Ok(sampler) => sampler,
        Err(_) => return SamplerSummary::unavailable(),
    };
    let mut rng = StdRng::seed_from_u64(run.seed ^ 0x1111);
    let (successes, stats) = measure_sampler(&mut sampler, run.unigen_samples, &mut rng);
    SamplerSummary {
        attempts: run.unigen_samples,
        successes,
        avg_sample_time: average_duration(stats.wall_time, run.unigen_samples),
        preparation_time,
        avg_xor_length: stats.average_xor_length(),
        failed_to_prepare: false,
    }
}

/// Measures UniWit on one benchmark.
pub fn measure_uniwit(benchmark: &Benchmark, run: &TableRunConfig) -> SamplerSummary {
    let config = UniWitConfig {
        bsat_budget: run.uniwit_budget,
        ..UniWitConfig::default()
    };
    let prep_start = Instant::now();
    let sampler = UniWit::new(&benchmark.formula, config);
    let preparation_time = prep_start.elapsed();
    let mut sampler = match sampler {
        Ok(sampler) => sampler,
        Err(_) => return SamplerSummary::unavailable(),
    };
    let mut rng = StdRng::seed_from_u64(run.seed ^ 0x2222);
    let (successes, stats) = measure_sampler(&mut sampler, run.uniwit_samples, &mut rng);
    SamplerSummary {
        attempts: run.uniwit_samples,
        successes,
        avg_sample_time: average_duration(stats.wall_time, run.uniwit_samples),
        preparation_time,
        avg_xor_length: stats.average_xor_length(),
        failed_to_prepare: false,
    }
}

fn average_duration(total: Duration, count: usize) -> Duration {
    if count == 0 {
        Duration::ZERO
    } else {
        total / count as u32
    }
}

/// Runs the full comparison over a suite of benchmarks.
pub fn run_table(suite: &[Benchmark], run: &TableRunConfig) -> Vec<TableRow> {
    suite
        .iter()
        .map(|benchmark| TableRow {
            name: benchmark.name.clone(),
            num_vars: benchmark.num_vars(),
            sampling_set_size: benchmark.sampling_set_size(),
            unigen: measure_unigen(benchmark, run),
            uniwit: measure_uniwit(benchmark, run),
        })
        .collect()
}

/// Formats a duration as seconds with millisecond resolution.
pub fn format_seconds(duration: Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

fn summary_cells(summary: &SamplerSummary) -> (String, String, String) {
    if summary.failed_to_prepare || summary.attempts == 0 {
        ("-".into(), "-".into(), "-".into())
    } else {
        (
            format!("{:.2}", summary.success_probability()),
            format_seconds(summary.avg_sample_time),
            format!("{:.1}", summary.avg_xor_length),
        )
    }
}

/// Renders the table in the layout of the paper's Table 1 / Table 2.
pub fn render_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:>7} {:>5} | {:>9} {:>12} {:>8} | {:>9} {:>12} {:>8}\n",
        "Benchmark",
        "|X|",
        "|S|",
        "UG succ",
        "UG time(s)",
        "UG xlen",
        "UW succ",
        "UW time(s)",
        "UW xlen"
    ));
    out.push_str(&"-".repeat(110));
    out.push('\n');
    for row in rows {
        let (ug_succ, ug_time, ug_xlen) = summary_cells(&row.unigen);
        let (uw_succ, uw_time, uw_xlen) = summary_cells(&row.uniwit);
        out.push_str(&format!(
            "{:<20} {:>7} {:>5} | {:>9} {:>12} {:>8} | {:>9} {:>12} {:>8}\n",
            row.name,
            row.num_vars,
            row.sampling_set_size,
            ug_succ,
            ug_time,
            ug_xlen,
            uw_succ,
            uw_time,
            uw_xlen
        ));
    }
    out
}

/// Renders the rows as CSV (one header line plus one line per row), for
/// post-processing or plotting.
pub fn render_csv(rows: &[TableRow]) -> String {
    let mut out = String::from(
        "benchmark,num_vars,sampling_set,unigen_succ_prob,unigen_avg_time_s,unigen_avg_xor_len,unigen_prep_s,uniwit_succ_prob,uniwit_avg_time_s,uniwit_avg_xor_len\n",
    );
    for row in rows {
        out.push_str(&format!(
            "{},{},{},{:.4},{:.6},{:.2},{:.6},{:.4},{:.6},{:.2}\n",
            row.name,
            row.num_vars,
            row.sampling_set_size,
            row.unigen.success_probability(),
            row.unigen.avg_sample_time.as_secs_f64(),
            row.unigen.avg_xor_length,
            row.unigen.preparation_time.as_secs_f64(),
            row.uniwit.success_probability(),
            row.uniwit.avg_sample_time.as_secs_f64(),
            row.uniwit.avg_xor_length,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_circuit::benchmarks;

    #[test]
    fn summary_probability_handles_zero_attempts() {
        assert_eq!(SamplerSummary::unavailable().success_probability(), 0.0);
    }

    #[test]
    fn table_row_rendering_contains_benchmark_names() {
        let rows = vec![TableRow {
            name: "demo".into(),
            num_vars: 100,
            sampling_set_size: 10,
            unigen: SamplerSummary {
                attempts: 4,
                successes: 4,
                avg_sample_time: Duration::from_millis(12),
                preparation_time: Duration::from_millis(100),
                avg_xor_length: 5.0,
                failed_to_prepare: false,
            },
            uniwit: SamplerSummary::unavailable(),
        }];
        let text = render_table(&rows);
        assert!(text.contains("demo"));
        assert!(text.contains("1.00"));
        assert!(text.contains('-'));
        let csv = render_csv(&rows);
        assert!(csv.lines().count() == 2);
        assert!(csv.contains("demo,100,10"));
    }

    #[test]
    fn measuring_a_tiny_benchmark_end_to_end() {
        // A small instance keeps this unit test fast while exercising the
        // full measurement path.
        let benchmark = benchmarks::parity_chain("harness-smoke", 8, 2, 2, 3);
        let run = TableRunConfig {
            unigen_samples: 3,
            uniwit_samples: 2,
            ..TableRunConfig::default()
        };
        let row = &run_table(std::slice::from_ref(&benchmark), &run)[0];
        assert_eq!(row.name, "harness-smoke");
        assert!(row.unigen.attempts == 3);
        assert!(row.unigen.successes >= 1);
    }

    #[test]
    fn env_overrides_are_optional() {
        let config = TableRunConfig::from_env();
        assert!(config.unigen_samples > 0);
    }
}
