//! Regenerates Table 1: runtime performance comparison of UniGen and UniWit.
//!
//! Usage:
//!
//! ```text
//! cargo run -p unigen-bench --release --bin table1
//! UNIGEN_SAMPLES=50 UNIWIT_SAMPLES=10 cargo run -p unigen-bench --release --bin table1
//! ```
//!
//! The columns mirror the paper's Table 1: benchmark name, |X|, |S|, then
//! success probability, average per-witness generation time and average
//! xor-clause length for UniGen and for UniWit. A `-` entry means the
//! sampler could not produce results within its budget, matching the paper's
//! "—" entries for UniWit on the larger instances.

use unigen_bench::harness::{render_csv, render_table, run_table, TableRunConfig};
use unigen_circuit::benchmarks;

fn main() {
    let run = TableRunConfig::from_env();
    let suite = benchmarks::table1_suite();
    eprintln!(
        "table1: {} benchmarks, {} UniGen samples and {} UniWit samples each",
        suite.len(),
        run.unigen_samples,
        run.uniwit_samples
    );
    let rows = run_table(&suite, &run);
    println!("{}", render_table(&rows));
    println!();
    println!("CSV:");
    println!("{}", render_csv(&rows));
}
