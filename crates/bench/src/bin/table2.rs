//! Regenerates Table 2 (the appendix's extended comparison) — same layout as
//! `table1`, over the larger instance list.
//!
//! Usage:
//!
//! ```text
//! cargo run -p unigen-bench --release --bin table2
//! ```

use unigen_bench::harness::{render_csv, render_table, run_table, TableRunConfig};
use unigen_circuit::benchmarks;

fn main() {
    let run = TableRunConfig::from_env();
    let suite = benchmarks::table2_suite();
    eprintln!(
        "table2: {} benchmarks, {} UniGen samples and {} UniWit samples each",
        suite.len(),
        run.unigen_samples,
        run.uniwit_samples
    );
    let rows = run_table(&suite, &run);
    println!("{}", render_table(&rows));
    println!();
    println!("CSV:");
    println!("{}", render_csv(&rows));
}
