//! Thread-scaling throughput benchmark for the deterministic parallel batch
//! engine, emitting the machine-readable `BENCH_parallel.json` baseline.
//!
//! ```text
//! bench_parallel [--smoke] [--check BASELINE] [--tolerance FRAC] [--out PATH]
//!
//!   --smoke           run one tiny instance and exit non-zero if any thread
//!                     count diverges from the serial witness sequence
//!   --check BASELINE  re-run the full suite (best of three) and exit
//!                     non-zero if parallel efficiency at the max thread
//!                     count (pool samples/sec over the same run's serial
//!                     samples/sec — a host-portable ratio) regressed more
//!                     than the tolerance below the committed baseline, or
//!                     if any run breaks serial equivalence
//!   --tolerance FRAC  allowed relative regression for --check [default: 0.15]
//!   --out PATH        where to write the JSON report [default: BENCH_parallel.json]
//! ```
//!
//! Serial equivalence (identical witness sequence at every thread count) is
//! checked on **every** run of every mode; it is the correctness half of the
//! gate and is never best-of-three'd away.

use std::process::ExitCode;

use unigen_bench::parallel::{
    parallel_bench_suite, parse_baseline_efficiency, parse_baseline_host_cpus,
    render_parallel_json, run_parallel_bench, ParallelBenchConfig, ParallelReport,
};
use unigen_circuit::benchmarks;

fn print_summary(report: &ParallelReport) {
    let max = report.max_threads();
    eprint!("{:<20} {:>8} {:>12}", "instance", "samples", "serial(sm/s)");
    for t in &report.config.thread_counts {
        eprint!(" {:>9}", format!("x{t}(sm/s)"));
    }
    // The scheduler ablation: static chunking at the max thread count, next
    // to the service path's deque scheduler in the x{max} column.
    eprint!(" {:>12}", format!("x{max}-static"));
    eprintln!(" {:>6}", "det");
    for i in &report.instances {
        eprint!(
            "{:<20} {:>8} {:>12.1}",
            i.name, report.config.samples, i.serial.samples_per_sec
        );
        for p in &i.points {
            eprint!(" {:>9.1}", p.samples_per_sec);
        }
        let static_at_max = i
            .points
            .iter()
            .find(|p| p.threads == max)
            .and_then(|p| p.static_samples_per_sec)
            .unwrap_or(0.0);
        eprint!(" {:>12.1}", static_at_max);
        eprintln!(" {:>6}", if i.deterministic() { "ok" } else { "FAIL" });
    }
    eprintln!(
        "host cpus: {}; geomean samples/sec at x{}: {:.1}; geomean efficiency at x{}: {:.3} (deque) vs {:.3} (static chunks); geomean speedup at x4: {:.2}",
        report.host_cpus,
        max,
        report.geomean_samples_per_sec_at_max(),
        max,
        report.geomean_parallel_efficiency_at_max(),
        report.geomean_static_efficiency_at_max(),
        report.geomean_speedup_at(4)
    );
}

/// Runs the full suite `runs` times and keeps the best (by the gate number,
/// parallel efficiency at the max thread count) report; serial equivalence
/// is checked on every run.
fn best_of(runs: usize) -> Result<ParallelReport, String> {
    let suite = parallel_bench_suite();
    let config = ParallelBenchConfig::default();
    let mut best: Option<ParallelReport> = None;
    for _ in 0..runs {
        let report = run_parallel_bench(&suite, &config);
        if !report.deterministic() {
            print_summary(&report);
            return Err("a thread count diverged from the serial witness sequence".into());
        }
        let better = best
            .as_ref()
            .map(|b| {
                report.geomean_parallel_efficiency_at_max() > b.geomean_parallel_efficiency_at_max()
            })
            .unwrap_or(true);
        if better {
            best = Some(report);
        }
    }
    Ok(best.expect("at least one run"))
}

/// The throughput-trajectory gate: compares a fresh best-of-three run against
/// the committed baseline and fails on a regression beyond the tolerance.
fn check_against(baseline_path: &str, tolerance: f64) -> ExitCode {
    let baseline_json = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(baseline) = parse_baseline_efficiency(&baseline_json) else {
        eprintln!("error: no geomean_parallel_efficiency_at_max_threads in {baseline_path}");
        return ExitCode::FAILURE;
    };
    let report = match best_of(3) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    print_summary(&report);
    // Parallel efficiency is only comparable between hosts with the same
    // core count: a baseline recorded on a multicore machine carries real
    // speedup (≫ 1) that a single-core runner can never reach, and vice
    // versa. On mismatched hardware the determinism half of the gate (above,
    // checked on every run) still stands; the numeric half is skipped
    // rather than failing every push on a hardware change.
    if let Some(baseline_cpus) = parse_baseline_host_cpus(&baseline_json) {
        if baseline_cpus != report.host_cpus {
            eprintln!(
                "note: baseline was recorded on a {baseline_cpus}-cpu host, this host has {}; \
                 skipping the efficiency comparison (determinism was still enforced) — \
                 regenerate {baseline_path} on this hardware to re-arm the numeric gate",
                report.host_cpus
            );
            return ExitCode::SUCCESS;
        }
    }
    let current = report.geomean_parallel_efficiency_at_max();
    let floor = baseline * (1.0 - tolerance);
    eprintln!(
        "throughput trajectory: current efficiency {current:.3} vs baseline {baseline:.3} at x{} (floor {floor:.3}; both normalised to the measuring host's own serial run)",
        report.max_threads()
    );
    if current < floor {
        eprintln!(
            "error: parallel efficiency at the max thread count regressed more than {:.0}% below the committed baseline",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let tolerance = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);
    if let Some(baseline) = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
    {
        return check_against(baseline, tolerance);
    }

    if smoke {
        let suite = vec![benchmarks::iscas_like("smoke", 14, 180, 11, 0x0526)];
        let config = ParallelBenchConfig {
            samples: 16,
            thread_counts: vec![1, 2, 8],
            master_seed: 0xdac2014,
        };
        let report = run_parallel_bench(&suite, &config);
        print_summary(&report);
        if !report.deterministic() {
            eprintln!("error: a thread count diverged from the serial witness sequence");
            return ExitCode::FAILURE;
        }
        println!("{}", render_parallel_json(&report));
        return ExitCode::SUCCESS;
    }

    let report = match best_of(3) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    print_summary(&report);
    let json = render_parallel_json(&report);
    match std::fs::write(&out_path, &json) {
        Ok(()) => {
            eprintln!("wrote {out_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
