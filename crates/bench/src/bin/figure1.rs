//! Regenerates Figure 1: the uniformity comparison between UniGen and the
//! ideal sampler US on a `case110`-style instance.
//!
//! Usage:
//!
//! ```text
//! cargo run -p unigen-bench --release --bin figure1
//! FIGURE1_SAMPLES=50000 cargo run -p unigen-bench --release --bin figure1
//! ```
//!
//! The output lists, for each observed frequency `c`, how many distinct
//! witnesses were generated exactly `c` times by each sampler (the two
//! series plotted in the paper's Figure 1), followed by summary statistics
//! (total variation distance from uniform, KL divergence, χ²) and the
//! empirical Theorem 1 envelope check.

use rand::rngs::StdRng;
use rand::SeedableRng;

use unigen::stats::{histogram_discrepancy, WitnessFrequencies};
use unigen::{UniGen, UniGenConfig, UniformSampler, WitnessSampler};
use unigen_circuit::benchmarks;

fn read_env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let samples = read_env_usize("FIGURE1_SAMPLES", 20_000);
    let seed = read_env_usize("HARNESS_SEED", 0x0110) as u64;

    let benchmark = benchmarks::figure1_instance();
    let formula = &benchmark.formula;
    let sampling_set = formula.sampling_set_or_all();
    eprintln!(
        "figure1: instance `{}` with |X| = {}, |S| = {}",
        benchmark.name,
        formula.num_vars(),
        sampling_set.len()
    );

    // Exact witness count (the paper uses sharpSAT here).
    let us = UniformSampler::new(formula).expect("figure-1 instance is satisfiable and countable");
    let witness_count = us.count();
    eprintln!("figure1: |R_F| = {witness_count} (exact)");

    // The same random source drives both samplers, as in the paper.
    let mut rng = StdRng::seed_from_u64(seed);

    // UniGen run.
    let mut unigen =
        UniGen::new(formula, UniGenConfig::default().with_seed(seed)).expect("prepare UniGen");
    let mut unigen_freq = WitnessFrequencies::new();
    let mut failures = 0usize;
    for _ in 0..samples {
        match unigen.sample(&mut rng).witness {
            Some(witness) => {
                unigen_freq.record(witness.project(&sampling_set).as_index());
            }
            None => failures += 1,
        }
    }

    // Ideal sampler run (index draws, as described in Section 5).
    let mut us_freq = WitnessFrequencies::new();
    for _ in 0..samples {
        us_freq.record(us.sample_index(&mut rng) as u64);
    }

    println!(
        "# Figure 1 — count-of-counts (instance: {})",
        benchmark.name
    );
    println!("# samples per sampler: {samples}, |R_F| = {witness_count}");
    println!("count  unigen_witnesses  us_witnesses");
    let unigen_hist = unigen_freq.count_of_counts();
    let us_hist = us_freq.count_of_counts();
    let keys: std::collections::BTreeSet<u64> =
        unigen_hist.keys().chain(us_hist.keys()).copied().collect();
    for count in keys {
        println!(
            "{count:>5}  {:>16}  {:>12}",
            unigen_hist.get(&count).copied().unwrap_or(0),
            us_hist.get(&count).copied().unwrap_or(0)
        );
    }

    println!();
    println!("# Summary");
    println!(
        "unigen: success prob = {:.4}, distinct witnesses seen = {}",
        1.0 - failures as f64 / samples as f64,
        unigen_freq.num_distinct()
    );
    println!(
        "unigen: TV from uniform = {:.4}, KL = {:.4} bits, chi^2 = {:.1}",
        unigen_freq.total_variation_from_uniform(witness_count),
        unigen_freq.kl_divergence_from_uniform(witness_count),
        unigen_freq.chi_square_against_uniform(witness_count)
    );
    println!(
        "us:     TV from uniform = {:.4}, KL = {:.4} bits, chi^2 = {:.1}",
        us_freq.total_variation_from_uniform(witness_count),
        us_freq.kl_divergence_from_uniform(witness_count),
        us_freq.chi_square_against_uniform(witness_count)
    );
    println!(
        "histogram discrepancy (max normalised bin difference) = {:.4}",
        histogram_discrepancy(&unigen_freq, &us_freq)
    );

    // Empirical Theorem 1 envelope: every observed witness frequency should
    // lie within (1 + ε) of uniform (statistically, for large enough N).
    let epsilon = unigen.config().epsilon;
    let n = unigen_freq.num_samples() as f64;
    let uniform = n / witness_count as f64;
    let (lo, hi) = (uniform / (1.0 + epsilon), uniform * (1.0 + epsilon));
    let outside = unigen_hist
        .iter()
        .filter(|(&count, _)| (count as f64) < lo || (count as f64) > hi)
        .map(|(_, &num)| num)
        .sum::<u64>();
    println!(
        "theorem-1 envelope [{lo:.1}, {hi:.1}] per witness: {outside} of {} observed witnesses outside",
        unigen_freq.num_distinct()
    );
}
