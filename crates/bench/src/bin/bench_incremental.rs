//! Incremental-vs-scratch `BSAT` benchmark: measures how much the persistent
//! guard-scoped solver saves over rebuilding a solver per hash cell, and
//! emits the machine-readable `BENCH_incremental.json` perf baseline.
//!
//! ```text
//! bench_incremental [--smoke] [--out PATH]
//!
//!   --smoke     run one tiny instance and exit non-zero if the incremental
//!               path is slower than scratch or the modes disagree (CI gate)
//!   --out PATH  where to write the JSON report [default: BENCH_incremental.json]
//! ```

use std::process::ExitCode;

use unigen_bench::harness::{
    incremental_bench_suite, render_incremental_json, run_incremental_bench,
    IncrementalBenchConfig, IncrementalReport,
};
use unigen_circuit::benchmarks;

fn report_is_sound(report: &IncrementalReport) -> bool {
    report.instances.iter().all(|i| i.witnesses_match())
}

fn print_summary(report: &IncrementalReport) {
    eprintln!(
        "{:<20} {:>6} {:>9} {:>12} {:>12} {:>8}",
        "instance", "cells", "witnesses", "scratch(s)", "increm.(s)", "speedup"
    );
    for i in &report.instances {
        eprintln!(
            "{:<20} {:>6} {:>9} {:>12.3} {:>12.3} {:>7.2}x",
            i.name,
            i.cells,
            i.incremental.witnesses,
            i.scratch.seconds,
            i.incremental.seconds,
            i.speedup()
        );
    }
    eprintln!(
        "geometric-mean speedup: {:.2}x",
        report.geometric_mean_speedup()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_incremental.json".to_string());

    if smoke {
        // A single small instance in the representative regime (constrained
        // circuit, small cells relative to clause mass), where rebuilding a
        // solver per cell visibly costs; the incremental path must win.
        let suite = vec![benchmarks::iscas_like("smoke", 14, 180, 11, 0x0526)];
        let config = IncrementalBenchConfig {
            cells_per_width: 3,
            width_window: 3,
            bound: 32,
            seed: 0xdac2014,
        };
        // Witness-set equality is deterministic and checked on every run;
        // the wall-clock half of the gate takes the best of three runs so a
        // scheduler stall on a shared CI runner cannot fail an unrelated
        // change.
        let mut best: Option<IncrementalReport> = None;
        for _ in 0..3 {
            let report = run_incremental_bench(&suite, &config);
            if !report_is_sound(&report) {
                print_summary(&report);
                eprintln!("error: incremental and scratch enumerations disagree");
                return ExitCode::FAILURE;
            }
            let better = best
                .as_ref()
                .map(|b| report.geometric_mean_speedup() > b.geometric_mean_speedup())
                .unwrap_or(true);
            if better {
                best = Some(report);
            }
        }
        let report = best.expect("three runs happened");
        print_summary(&report);
        if report.geometric_mean_speedup() < 1.0 {
            eprintln!("error: incremental path is slower than scratch on the smoke instance");
            return ExitCode::FAILURE;
        }
        println!("{}", render_incremental_json(&report));
        return ExitCode::SUCCESS;
    }

    let report = run_incremental_bench(
        &incremental_bench_suite(),
        &IncrementalBenchConfig::default(),
    );
    print_summary(&report);
    if !report_is_sound(&report) {
        eprintln!("error: incremental and scratch enumerations disagree");
        return ExitCode::FAILURE;
    }
    let json = render_incremental_json(&report);
    match std::fs::write(&out_path, &json) {
        Ok(()) => {
            eprintln!("wrote {out_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
