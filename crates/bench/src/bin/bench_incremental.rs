//! Incremental-vs-scratch `BSAT` benchmark: measures how much the persistent
//! guard-scoped solver saves over rebuilding a solver per hash cell — with a
//! Gauss–Jordan on/off ablation of the incremental mode — and emits the
//! machine-readable `BENCH_incremental.json` perf baseline.
//!
//! ```text
//! bench_incremental [--smoke] [--check BASELINE] [--tolerance FRAC] [--out PATH]
//!
//!   --smoke           run one tiny instance and exit non-zero if the
//!                     incremental path is slower than scratch or the modes
//!                     disagree (CI gate)
//!   --check BASELINE  re-run the full suite (best of three) and exit
//!                     non-zero if the geometric-mean speedup regressed more
//!                     than the tolerance below the committed baseline
//!   --tolerance FRAC  allowed relative regression for --check [default: 0.15]
//!   --out PATH        where to write the JSON report [default: BENCH_incremental.json]
//! ```

use std::process::ExitCode;

use unigen_bench::harness::{
    incremental_bench_suite, parse_baseline_geomean, render_incremental_json,
    run_incremental_bench, IncrementalBenchConfig, IncrementalReport,
};
use unigen_circuit::benchmarks;

fn report_is_sound(report: &IncrementalReport) -> bool {
    report.instances.iter().all(|i| i.witnesses_match())
}

fn print_summary(report: &IncrementalReport) {
    eprintln!(
        "{:<20} {:>6} {:>9} {:>12} {:>12} {:>12} {:>8} {:>10} {:>10}",
        "instance",
        "cells",
        "witnesses",
        "scratch(s)",
        "increm.(s)",
        "nogauss(s)",
        "speedup",
        "conf/call",
        "ng-conf"
    );
    for i in &report.instances {
        eprintln!(
            "{:<20} {:>6} {:>9} {:>12.3} {:>12.3} {:>12.3} {:>7.2}x {:>10.1} {:>10.1}",
            i.name,
            i.cells,
            i.incremental.witnesses,
            i.scratch.seconds,
            i.incremental.seconds,
            i.incremental_nogauss.seconds,
            i.speedup(),
            i.incremental.conflicts_per_call,
            i.incremental_nogauss.conflicts_per_call
        );
    }
    eprintln!(
        "geometric-mean speedup: {:.2}x",
        report.geometric_mean_speedup()
    );
}

/// Runs the full suite `runs` times and keeps the fastest (by geometric-mean
/// speedup) sound report; witness-set agreement is checked on every run.
fn best_of(runs: usize) -> Result<IncrementalReport, String> {
    let suite = incremental_bench_suite();
    let config = IncrementalBenchConfig::default();
    let mut best: Option<IncrementalReport> = None;
    for _ in 0..runs {
        let report = run_incremental_bench(&suite, &config);
        if !report_is_sound(&report) {
            print_summary(&report);
            return Err("incremental and scratch enumerations disagree".into());
        }
        let better = best
            .as_ref()
            .map(|b| report.geometric_mean_speedup() > b.geometric_mean_speedup())
            .unwrap_or(true);
        if better {
            best = Some(report);
        }
    }
    Ok(best.expect("at least one run"))
}

/// The perf-trajectory gate: compares a fresh best-of-three run against the
/// committed baseline and fails on a regression beyond the tolerance.
fn check_against(baseline_path: &str, tolerance: f64) -> ExitCode {
    let baseline_json = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(baseline) = parse_baseline_geomean(&baseline_json) else {
        eprintln!("error: no geometric_mean_speedup in {baseline_path}");
        return ExitCode::FAILURE;
    };
    let report = match best_of(3) {
        Ok(report) => report,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };
    print_summary(&report);
    let current = report.geometric_mean_speedup();
    let floor = baseline * (1.0 - tolerance);
    eprintln!(
        "perf trajectory: current {current:.3}x vs baseline {baseline:.3}x (floor {floor:.3}x)"
    );
    if current < floor {
        eprintln!(
            "error: geometric-mean speedup regressed more than {:.0}% below the committed baseline",
            tolerance * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_incremental.json".to_string());
    let tolerance = args
        .iter()
        .position(|a| a == "--tolerance")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.15);
    if let Some(baseline) = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
    {
        return check_against(baseline, tolerance);
    }

    if smoke {
        // A single small instance in the representative regime (constrained
        // circuit, small cells relative to clause mass), where rebuilding a
        // solver per cell visibly costs; the incremental path must win.
        let suite = vec![benchmarks::iscas_like("smoke", 14, 180, 11, 0x0526)];
        let config = IncrementalBenchConfig {
            cells_per_width: 3,
            width_window: 3,
            bound: 32,
            seed: 0xdac2014,
        };
        // Witness-set equality is deterministic and checked on every run;
        // the wall-clock half of the gate takes the best of three runs so a
        // scheduler stall on a shared CI runner cannot fail an unrelated
        // change.
        let mut best: Option<IncrementalReport> = None;
        for _ in 0..3 {
            let report = run_incremental_bench(&suite, &config);
            if !report_is_sound(&report) {
                print_summary(&report);
                eprintln!("error: incremental and scratch enumerations disagree");
                return ExitCode::FAILURE;
            }
            let better = best
                .as_ref()
                .map(|b| report.geometric_mean_speedup() > b.geometric_mean_speedup())
                .unwrap_or(true);
            if better {
                best = Some(report);
            }
        }
        let report = best.expect("three runs happened");
        print_summary(&report);
        if report.geometric_mean_speedup() < 1.0 {
            eprintln!("error: incremental path is slower than scratch on the smoke instance");
            return ExitCode::FAILURE;
        }
        println!("{}", render_incremental_json(&report));
        return ExitCode::SUCCESS;
    }

    let report = run_incremental_bench(
        &incremental_bench_suite(),
        &IncrementalBenchConfig::default(),
    );
    print_summary(&report);
    if !report_is_sound(&report) {
        eprintln!("error: incremental and scratch enumerations disagree");
        return ExitCode::FAILURE;
    }
    let json = render_incremental_json(&report);
    match std::fs::write(&out_path, &json) {
        Ok(()) => {
            eprintln!("wrote {out_path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
