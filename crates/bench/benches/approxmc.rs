//! Criterion bench for the ApproxMC preparation step (line 9 of
//! Algorithm 1): the one-off cost UniGen amortises over all samples, with and
//! without the guarantee-voiding leap-frogging shortcut, compared against the
//! exact counter on the instances where the latter is feasible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use unigen_circuit::benchmarks::{self, Benchmark};
use unigen_counting::{ApproxMc, ApproxMcConfig, ExactCounter};

fn instances() -> Vec<Benchmark> {
    vec![
        benchmarks::parity_chain("case121-small", 12, 3, 4, 0x0121),
        benchmarks::iscas_like("s526-small", 10, 90, 4, 0x0526),
    ]
}

fn counting(c: &mut Criterion) {
    let mut group = c.benchmark_group("approxmc");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));

    for benchmark in instances() {
        group.bench_with_input(
            BenchmarkId::new("approxmc", &benchmark.name),
            &benchmark,
            |b, benchmark| {
                let counter = ApproxMc::new(ApproxMcConfig::default());
                b.iter(|| counter.count(&benchmark.formula, 7).expect("count"))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("approxmc_leapfrog", &benchmark.name),
            &benchmark,
            |b, benchmark| {
                let counter = ApproxMc::new(ApproxMcConfig {
                    leapfrog: true,
                    ..ApproxMcConfig::default()
                });
                b.iter(|| counter.count(&benchmark.formula, 7).expect("count"))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("exact", &benchmark.name),
            &benchmark,
            |b, benchmark| {
                b.iter(|| {
                    ExactCounter::new()
                        .count(&benchmark.formula)
                        .expect("count")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, counting);
criterion_main!(benches);
