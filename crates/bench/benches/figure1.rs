//! Criterion bench behind Figure 1: the cost of one UniGen draw versus one
//! ideal-sampler draw on the uniformity-study instance, plus the exact count
//! that the ideal sampler needs up front.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use unigen::{UniGen, UniGenConfig, UniformSampler, WitnessSampler};
use unigen_circuit::benchmarks;
use unigen_counting::ExactCounter;

fn figure1_sampling(c: &mut Criterion) {
    let benchmark = benchmarks::figure1_instance();
    let formula = benchmark.formula.clone();

    let mut group = c.benchmark_group("figure1");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    group.bench_function("exact_count", |b| {
        b.iter(|| ExactCounter::new().count(&formula).expect("countable"))
    });

    let mut unigen =
        UniGen::new(&formula, UniGenConfig::default()).expect("prepare UniGen for figure 1");
    let mut rng = StdRng::seed_from_u64(3);
    group.bench_function("unigen_sample", |b| b.iter(|| unigen.sample(&mut rng)));

    let us = UniformSampler::new(&formula).expect("prepare US for figure 1");
    let mut rng = StdRng::seed_from_u64(4);
    group.bench_function("us_sample_index", |b| b.iter(|| us.sample_index(&mut rng)));

    group.finish();
}

criterion_group!(benches, figure1_sampling);
criterion_main!(benches);
