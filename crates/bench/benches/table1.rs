//! Criterion bench behind Table 1: per-witness generation cost of UniGen vs
//! UniWit on representative instances.
//!
//! The paper's Table 1 reports the average time to generate one witness.
//! This bench measures exactly that quantity — UniGen is timed *after* its
//! one-off preparation (which is what the table's amortised numbers mean),
//! UniWit has no preparation to amortise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use unigen::{UniGen, UniGenConfig, UniWit, UniWitConfig, WitnessSampler};
use unigen_circuit::benchmarks::{self, Benchmark};
use unigen_satsolver::Budget;

fn bench_instances() -> Vec<Benchmark> {
    vec![
        benchmarks::parity_chain("case121-small", 12, 3, 4, 0x0121),
        benchmarks::squaring("squaring6-small", 6, 4, 0x0808),
        benchmarks::long_chain("llreverse-small", 10, 30, 4, 0x11ef),
    ]
}

fn per_witness_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_per_witness");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));

    for benchmark in bench_instances() {
        // UniGen: prepare once outside the measurement, then time samples.
        let config = UniGenConfig::default()
            .with_bsat_budget(Budget::new().with_time_limit(Duration::from_secs(10)));
        if let Ok(mut sampler) = UniGen::new(&benchmark.formula, config) {
            let mut rng = StdRng::seed_from_u64(1);
            group.bench_with_input(
                BenchmarkId::new("unigen", &benchmark.name),
                &benchmark,
                |b, _| b.iter(|| sampler.sample(&mut rng)),
            );
        }

        // UniWit: every sample carries the full search cost.
        let config = UniWitConfig {
            bsat_budget: Budget::new().with_time_limit(Duration::from_secs(10)),
            ..UniWitConfig::default()
        };
        if let Ok(mut sampler) = UniWit::new(&benchmark.formula, config) {
            let mut rng = StdRng::seed_from_u64(2);
            group.bench_with_input(
                BenchmarkId::new("uniwit", &benchmark.name),
                &benchmark,
                |b, _| b.iter(|| sampler.sample(&mut rng)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, per_witness_cost);
criterion_main!(benches);
