//! Ablation E4: what does hashing over the independent support buy?
//!
//! Section 4 of the paper argues that the "fundamental difference" between
//! UniGen and its predecessors is drawing hash functions over `S` instead of
//! the full support `X`, which shortens the xor clauses from `|X|/2` to
//! `|S|/2` expected variables. This bench runs the *same* UniGen code twice
//! on the same instance — once with the independent support as the sampling
//! set, once with the full support — so the measured gap isolates exactly
//! that design choice.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use unigen::{UniGen, UniGenConfig, WitnessSampler};
use unigen_circuit::benchmarks;
use unigen_cnf::Var;
use unigen_satsolver::Budget;

fn sampling_set_ablation(c: &mut Criterion) {
    // A `case…`-style instance with ≈ 2^10 witnesses: large enough to force
    // the hashed code path for both sampling-set choices, small enough that
    // the full-support preparation stays affordable inside a bench run.
    let benchmark = benchmarks::parity_chain("ablation-case", 14, 3, 4, 0x0121);
    let formula = benchmark.formula.clone();
    let independent_support = formula.sampling_set_or_all();
    let full_support: Vec<Var> = (0..formula.num_vars()).map(Var::new).collect();

    let mut group = c.benchmark_group("ablation_sampling_set");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));

    let config = UniGenConfig::default()
        .with_bsat_budget(Budget::new().with_time_limit(Duration::from_secs(10)));

    if let Ok(mut sampler) =
        UniGen::with_sampling_set(&formula, &independent_support, config.clone())
    {
        let mut rng = StdRng::seed_from_u64(5);
        group.bench_function("hash_over_independent_support", |b| {
            b.iter(|| sampler.sample(&mut rng))
        });
    }

    if let Ok(mut sampler) = UniGen::with_sampling_set(&formula, &full_support, config) {
        let mut rng = StdRng::seed_from_u64(6);
        group.bench_function("hash_over_full_support", |b| {
            b.iter(|| sampler.sample(&mut rng))
        });
    }

    group.finish();
}

criterion_group!(benches, sampling_set_ablation);
criterion_main!(benches);
