//! Ablation E5: what does amortising the preparation phase buy?
//!
//! UniGen runs lines 1–11 of Algorithm 1 (the `BSAT` probe plus the ApproxMC
//! call) once per formula and reuses the result for every sample — the
//! guarantee-preserving replacement for "leap-frogging". This bench compares
//! the amortised per-witness cost against re-running the whole preparation
//! for every single witness, quantifying the second advantage claimed in the
//! paper's Section 5 discussion.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

use unigen::{UniGen, UniGenConfig, WitnessSampler};
use unigen_circuit::benchmarks;
use unigen_satsolver::Budget;

fn amortization(c: &mut Criterion) {
    let benchmark = benchmarks::parity_chain("ablation-amortize", 12, 3, 4, 0x0121);
    let formula = benchmark.formula.clone();
    let config = UniGenConfig::default()
        .with_bsat_budget(Budget::new().with_time_limit(Duration::from_secs(10)));

    let mut group = c.benchmark_group("ablation_amortization");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));

    let mut prepared = UniGen::new(&formula, config.clone()).expect("prepare");
    let mut rng = StdRng::seed_from_u64(7);
    group.bench_function("amortized_sample", |b| b.iter(|| prepared.sample(&mut rng)));

    let mut rng = StdRng::seed_from_u64(8);
    group.bench_function("fresh_preparation_per_sample", |b| {
        b.iter(|| {
            let mut sampler = UniGen::new(&formula, config.clone()).expect("prepare");
            sampler.sample(&mut rng)
        })
    });

    group.finish();
}

criterion_group!(benches, amortization);
criterion_main!(benches);
