//! `unigen-net` — dependency-free network serving for the UniGen
//! sampler service (DAC 2014 reproduction).
//!
//! The crate turns the in-process [`unigen::SamplerService`] into a
//! daemon: a single epoll readiness loop ([`sys`]) multiplexes many TCP
//! and unix-domain clients onto shared work-stealing pools, speaking a
//! versioned length-prefixed binary protocol ([`wire`]). Per-connection
//! state (bounded write buffers with backpressure, cancellation flags,
//! the dispatch protocol) lives in [`conn`] and is built exclusively on
//! `conc` primitives, so the same code paths are model-checked
//! in `tests/model_conn.rs` under the `conc` controlled scheduler.
//!
//! Entry points: [`server::serve`] / [`server::ServeConfig`] for
//! embedding the daemon, [`client::Client`] for talking to one, and the
//! `unigen_cli` binary (`serve` / `client` subcommands) for the shell.
//!
//! Determinism contract (verified end to end in
//! `tests/serve_end_to_end.rs` and the CI serve-smoke step): for a
//! fixed `(formula, spec, count, master_seed)`, the witness sequence a
//! client receives over the wire is bit-identical to
//! `WitnessSampler::sample_batch` run in-process — per request, at any
//! concurrency. Inter-client frame ordering is explicitly *not*
//! deterministic; see the [`wire`] module docs.

pub mod client;
pub mod conn;
pub mod fuzz;
pub mod server;
pub mod sys;
pub mod wire;

pub use client::{Client, ClientError, ClientRequest, WireBatch, WireOutcome};
pub use server::{serve, NetError, ServeConfig, ServerHandle};
pub use wire::{Decoder, ErrorCode, Frame, FrameError, PROTOCOL_VERSION};
