//! The sampler daemon: a readiness loop multiplexing many client
//! connections onto shared [`SamplerService`] pools.
//!
//! One event-loop thread owns every socket (listeners, a self-wake
//! pipe, and all client connections, nonblocking throughout) via the
//! [`crate::sys::Poller`] epoll shim. Requests are dispatched to
//! drainer threads that stream `ResponseHandle` outcomes into bounded
//! per-connection [`Outbound`] buffers; the loop drains those buffers
//! round-robin across connections so one firehose client cannot starve
//! the rest. Prepared formula+spec pairs live in a fingerprint-keyed
//! registry, so repeat requests (and concurrent clients sampling the
//! same formula) share a single prepared service.
//!
//! Shutdown: [`ServerHandle::shutdown`] (flag + wake-pipe nudge) from
//! the embedding process, or a wire `Shutdown` frame when the daemon
//! was started with `allow_shutdown` (the CLI's `--allow-shutdown`).

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use conc::atomic::{AtomicBool, AtomicU64, Ordering};
use conc::sync::{Condvar, Mutex, MutexGuard};
use conc::thread::JoinHandle;
use unigen::{
    BuildError, SampleRequest, SamplerBuilder, SamplerError, SamplerService, ServiceConfig,
};
use unigen_cnf::dimacs;
use unigen_cnf::Var;

use crate::conn::{run_request, ConnRequests, Outbound, RequestJob};
use crate::sys::{Poller, Readiness};
use crate::wire::{
    self, Decoder, ErrorCode, Family, FormulaRef, Frame, WireHealth, WireSpec, PROTOCOL_VERSION,
};

const TOKEN_TCP: u64 = 0;
const TOKEN_UNIX: u64 = 1;
const TOKEN_WAKE: u64 = 2;
const TOKEN_CONN_BASE: u64 = 3;

/// Bytes drained per connection per fairness round.
const DRAIN_SLICE: usize = 16 * 1024;

fn lock_ok<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(_) => panic!("server mutex poisoned"),
    }
}

/// Serving-layer error.
#[derive(Debug)]
pub enum NetError {
    /// An OS-level socket or polling failure.
    Io(io::Error),
    /// The configuration is unusable (e.g. no listen address).
    Config(&'static str),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(err) => write!(f, "socket error: {err}"),
            NetError::Config(msg) => write!(f, "config error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(err: io::Error) -> NetError {
        NetError::Io(err)
    }
}

/// Daemon configuration for [`serve`].
#[derive(Clone)]
pub struct ServeConfig {
    /// TCP listen address (e.g. `127.0.0.1:4171`); `None` to skip TCP.
    pub tcp: Option<String>,
    /// Unix-domain socket path; `None` to skip.
    pub unix: Option<PathBuf>,
    /// Workers per prepared service; 0 uses the service default.
    pub workers: usize,
    /// Request-queue capacity per prepared service; 0 uses the default.
    pub queue_capacity: usize,
    /// Byte capacity of each connection's outbound buffer.
    pub outbound_capacity: usize,
    /// `QueueFull` retries before a request is rejected as `Busy`.
    pub submit_retry_budget: usize,
    /// Max prepared formula+spec entries in the registry.
    pub max_formulas: usize,
    /// Honor wire `Shutdown` frames (the CLI's `--allow-shutdown`).
    pub allow_shutdown: bool,
    /// DIMACS texts to prepare (with the default UniGen spec) before
    /// accepting connections; their fingerprints are logged.
    pub preload: Vec<String>,
    /// Suppress the serve log lines on stderr.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            tcp: None,
            unix: None,
            workers: 0,
            queue_capacity: 0,
            outbound_capacity: 256 * 1024,
            submit_retry_budget: 64,
            max_formulas: 64,
            allow_shutdown: false,
            preload: Vec::new(),
            quiet: false,
        }
    }
}

/// The default wire spec used for preloaded formulas (UniGen, family
/// defaults, default prepare seed).
pub fn default_spec() -> WireSpec {
    WireSpec {
        family: Family::UniGen,
        epsilon_bits: None,
        prepare_seed: unigen::UniGenConfig::default().seed,
    }
}

// ---------------------------------------------------------------------------
// Formula registry
// ---------------------------------------------------------------------------

/// A fully prepared formula+spec: the shared service plus everything a
/// response stream needs to echo.
pub struct PreparedEntry {
    /// The shared sampling pool for this formula+spec.
    pub service: SamplerService,
    /// Canonical projected sampling set.
    pub sampling_set: Vec<Var>,
    /// Content fingerprint (see [`wire::fingerprint`]).
    pub fingerprint: u64,
}

#[derive(Clone)]
enum EntryState {
    Preparing,
    Ready(Arc<PreparedEntry>),
    Failed(ErrorCode, String),
}

struct Registry {
    max: usize,
    service_config: ServiceConfig,
    entries: Mutex<HashMap<u64, EntryState>>,
    ready: Condvar,
}

impl Registry {
    fn new(max: usize, service_config: ServiceConfig) -> Registry {
        Registry {
            max: max.max(1),
            service_config,
            entries: Mutex::new(HashMap::new()),
            ready: Condvar::new(),
        }
    }

    /// Resolve an inline DIMACS request, preparing (and caching) the
    /// sampler on first sight. Concurrent requests for the same
    /// fingerprint wait for the single in-flight prepare.
    fn resolve_inline(
        &self,
        dimacs_bytes: &[u8],
        spec: &WireSpec,
    ) -> Result<Arc<PreparedEntry>, (ErrorCode, String)> {
        let text = std::str::from_utf8(dimacs_bytes)
            .map_err(|_| (ErrorCode::PrepareFailed, "DIMACS is not UTF-8".to_owned()))?;
        let formula = dimacs::parse(text)
            .map_err(|err| (ErrorCode::PrepareFailed, format!("DIMACS parse: {err}")))?;
        let canonical = dimacs::to_dimacs_string(&formula);
        let fingerprint = wire::fingerprint(canonical.as_bytes(), spec);

        let mut entries = lock_ok(&self.entries);
        loop {
            match entries.get(&fingerprint).cloned() {
                Some(EntryState::Ready(entry)) => return Ok(entry),
                Some(EntryState::Failed(code, detail)) => return Err((code, detail)),
                Some(EntryState::Preparing) => {
                    entries = match self.ready.wait(entries) {
                        Ok(guard) => guard,
                        Err(_) => panic!("server mutex poisoned"),
                    };
                }
                None => {
                    if entries.len() >= self.max {
                        return Err((
                            ErrorCode::RegistryFull,
                            format!("registry holds {} prepared formulas (max)", self.max),
                        ));
                    }
                    entries.insert(fingerprint, EntryState::Preparing);
                    drop(entries);
                    let built = build_entry(&formula, spec, fingerprint, self.service_config);
                    let state = match &built {
                        Ok(entry) => EntryState::Ready(Arc::clone(entry)),
                        Err((code, detail)) => EntryState::Failed(*code, detail.clone()),
                    };
                    let mut entries = lock_ok(&self.entries);
                    entries.insert(fingerprint, state);
                    self.ready.notify_all();
                    drop(entries);
                    return built;
                }
            }
        }
    }

    /// Resolve a fingerprint-referenced request against already
    /// prepared entries (waiting out an in-flight prepare).
    fn resolve_fingerprint(
        &self,
        fingerprint: u64,
    ) -> Result<Arc<PreparedEntry>, (ErrorCode, String)> {
        let mut entries = lock_ok(&self.entries);
        loop {
            match entries.get(&fingerprint).cloned() {
                Some(EntryState::Ready(entry)) => return Ok(entry),
                Some(EntryState::Failed(code, detail)) => return Err((code, detail)),
                Some(EntryState::Preparing) => {
                    entries = match self.ready.wait(entries) {
                        Ok(guard) => guard,
                        Err(_) => panic!("server mutex poisoned"),
                    };
                }
                None => {
                    return Err((
                        ErrorCode::UnknownFingerprint,
                        format!("fingerprint {fingerprint:016x} is not registered"),
                    ))
                }
            }
        }
    }

    /// Aggregate `ServiceHealth` across every ready entry.
    fn health(&self) -> WireHealth {
        let mut agg = WireHealth::default();
        for state in lock_ok(&self.entries).values() {
            if let EntryState::Ready(entry) = state {
                let h = entry.service.health();
                agg.services += 1;
                agg.configured_workers += h.configured_workers as u64;
                agg.alive_workers += h.alive_workers as u64;
                agg.worker_panics += h.worker_panics;
                agg.respawns += h.respawns;
                agg.item_retries += h.item_retries;
                agg.faults_injected += h.faults_injected;
                agg.pending_requests += h.pending_requests as u64;
                agg.queued_items += h.queued_items as u64;
            }
        }
        agg
    }
}

fn build_entry(
    formula: &unigen_cnf::CnfFormula,
    spec: &WireSpec,
    fingerprint: u64,
    service_config: ServiceConfig,
) -> Result<Arc<PreparedEntry>, (ErrorCode, String)> {
    let mut builder = match spec.family {
        Family::UniGen => SamplerBuilder::unigen(formula),
        Family::UniWit => SamplerBuilder::uniwit(formula),
        Family::XorSamplePrime => SamplerBuilder::xorsample(formula),
        Family::Uniform => SamplerBuilder::uniform(formula),
    };
    builder = builder.seed(spec.prepare_seed);
    if let Some(bits) = spec.epsilon_bits {
        builder = builder.epsilon(f64::from_bits(bits));
    }
    let service = builder.into_service(service_config).map_err(|err| {
        let code = match &err {
            BuildError::Prepare(SamplerError::Unsatisfiable) => ErrorCode::Unsat,
            BuildError::UnsupportedOption { .. } => ErrorCode::Unsupported,
            _ => ErrorCode::PrepareFailed,
        };
        (code, err.to_string())
    })?;
    Ok(Arc::new(PreparedEntry {
        service,
        sampling_set: formula.sampling_set_or_all(),
        fingerprint,
    }))
}

// ---------------------------------------------------------------------------
// Event loop
// ---------------------------------------------------------------------------

enum Transport {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Transport {
    fn raw_fd(&self) -> RawFd {
        match self {
            Transport::Tcp(s) => s.as_raw_fd(),
            Transport::Unix(s) => s.as_raw_fd(),
        }
    }

    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.read(buf),
            Transport::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Transport::Tcp(s) => s.write(buf),
            Transport::Unix(s) => s.write(buf),
        }
    }
}

struct Conn {
    transport: Transport,
    peer: String,
    decoder: Decoder,
    outbound: Arc<Outbound>,
    requests: Arc<ConnRequests>,
    submit_retries: Arc<AtomicU64>,
    /// Frame currently being written, and how much of it went out.
    wbuf: Vec<u8>,
    wpos: usize,
    greeted: bool,
    /// Registered for write readiness in the poller.
    want_write: bool,
    /// Flush what is queued, then disconnect (protocol errors).
    closing: bool,
}

impl Conn {
    fn has_pending_write(&self) -> bool {
        self.wpos < self.wbuf.len() || self.outbound.queued_frames() > 0
    }
}

struct Shared {
    registry: Registry,
    stop: AtomicBool,
    allow_shutdown: bool,
    submit_retry_budget: usize,
    quiet: bool,
}

impl Shared {
    fn log(&self, line: fmt::Arguments<'_>) {
        if !self.quiet {
            eprintln!("c serve: {line}");
        }
    }
}

/// Handle to a running daemon (returned by [`serve`]).
pub struct ServerHandle {
    shared: Arc<Shared>,
    wake: UnixStream,
    thread: Option<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// Bound TCP address, if TCP was enabled (useful with port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Bound unix-socket path, if enabled.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        let _ = (&self.wake).write(&[1u8]);
        if let Some(thread) = self.thread.take() {
            if thread.join().is_err() && !std::thread::panicking() {
                panic!("server event loop panicked");
            }
        }
    }

    /// Stop the loop, close every connection, and join the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Block until the loop exits on its own (a wire `Shutdown` frame
    /// under `allow_shutdown`).
    pub fn wait(mut self) {
        if let Some(thread) = self.thread.take() {
            if thread.join().is_err() && !std::thread::panicking() {
                panic!("server event loop panicked");
            }
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_and_join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Bind the configured listeners and start the daemon's event loop on a
/// background thread.
pub fn serve(config: ServeConfig) -> Result<ServerHandle, NetError> {
    if config.tcp.is_none() && config.unix.is_none() {
        return Err(NetError::Config("serve needs --listen and/or --unix"));
    }

    let mut service_config = ServiceConfig::default();
    if config.workers > 0 {
        service_config = service_config.with_workers(config.workers);
    }
    if config.queue_capacity > 0 {
        service_config = service_config.with_queue_capacity(config.queue_capacity);
    }

    let shared = Arc::new(Shared {
        registry: Registry::new(config.max_formulas, service_config),
        stop: AtomicBool::new(false),
        allow_shutdown: config.allow_shutdown,
        submit_retry_budget: config.submit_retry_budget,
        quiet: config.quiet,
    });

    for text in &config.preload {
        match shared
            .registry
            .resolve_inline(text.as_bytes(), &default_spec())
        {
            Ok(entry) => shared.log(format_args!(
                "preloaded formula fp={:016x} |S|={}",
                entry.fingerprint,
                entry.sampling_set.len()
            )),
            Err((code, detail)) => {
                return Err(NetError::Io(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("preload failed ({}): {detail}", code.name()),
                )))
            }
        }
    }

    let poller = Poller::new()?;

    let tcp_listener = match &config.tcp {
        Some(addr) => {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            poller.register(listener.as_raw_fd(), TOKEN_TCP, true, false)?;
            Some(listener)
        }
        None => None,
    };
    let tcp_addr = match &tcp_listener {
        Some(listener) => Some(listener.local_addr()?),
        None => None,
    };

    let unix_listener = match &config.unix {
        Some(path) => {
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            poller.register(listener.as_raw_fd(), TOKEN_UNIX, true, false)?;
            Some(listener)
        }
        None => None,
    };

    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    poller.register(wake_rx.as_raw_fd(), TOKEN_WAKE, true, false)?;

    if let Some(addr) = tcp_addr {
        shared.log(format_args!("listening on tcp {addr}"));
    }
    if let Some(path) = &config.unix {
        shared.log(format_args!("listening on unix {}", path.display()));
    }

    let loop_shared = Arc::clone(&shared);
    let loop_wake_tx = wake_tx.try_clone()?;
    let unix_path = config.unix.clone();
    let thread = conc::thread::spawn(move || {
        let mut event_loop = EventLoop {
            shared: loop_shared,
            poller,
            tcp_listener,
            unix_listener,
            wake_rx,
            wake_tx: loop_wake_tx,
            conns: HashMap::new(),
            next_token: TOKEN_CONN_BASE,
            rr_cursor: 0,
            workers: Vec::new(),
            outbound_capacity: config.outbound_capacity,
        };
        event_loop.run();
    });

    Ok(ServerHandle {
        shared,
        wake: wake_tx,
        thread: Some(thread),
        tcp_addr,
        unix_path,
    })
}

struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    tcp_listener: Option<TcpListener>,
    unix_listener: Option<UnixListener>,
    wake_rx: UnixStream,
    wake_tx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    rr_cursor: usize,
    workers: Vec<JoinHandle<()>>,
    outbound_capacity: usize,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<Readiness> = Vec::new();
        loop {
            events.clear();
            if let Err(err) = self.poller.wait(&mut events, -1) {
                self.shared.log(format_args!("poll failed: {err}"));
                break;
            }
            let mut dead: Vec<u64> = Vec::new();
            for &ev in &events {
                match ev.token {
                    TOKEN_TCP => self.accept_tcp(),
                    TOKEN_UNIX => self.accept_unix(),
                    TOKEN_WAKE => self.drain_wake_pipe(),
                    token => {
                        if (ev.readable || ev.hangup) && self.read_conn(token) == ConnFate::Dead {
                            dead.push(token);
                        }
                    }
                }
            }
            for token in dead {
                self.disconnect(token, "read error or peer hangup");
            }
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            self.drain_phase();
            self.reap_workers();
        }
        self.teardown();
    }

    fn reap_workers(&mut self) {
        let mut live = Vec::with_capacity(self.workers.len());
        for worker in self.workers.drain(..) {
            if worker.is_finished() {
                let _ = worker.join();
            } else {
                live.push(worker);
            }
        }
        self.workers = live;
    }

    fn accept_tcp(&mut self) {
        loop {
            let listener = match &self.tcp_listener {
                Some(listener) => listener,
                None => return,
            };
            match listener.accept() {
                Ok((stream, addr)) => {
                    self.install_conn(Transport::Tcp(stream), format!("tcp {addr}"));
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => {
                    self.shared.log(format_args!("tcp accept failed: {err}"));
                    return;
                }
            }
        }
    }

    fn accept_unix(&mut self) {
        loop {
            let listener = match &self.unix_listener {
                Some(listener) => listener,
                None => return,
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    self.install_conn(Transport::Unix(stream), "unix".to_owned());
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(err) => {
                    self.shared.log(format_args!("unix accept failed: {err}"));
                    return;
                }
            }
        }
    }

    fn install_conn(&mut self, transport: Transport, peer: String) {
        let nonblocking = match &transport {
            Transport::Tcp(s) => s.set_nonblocking(true),
            Transport::Unix(s) => s.set_nonblocking(true),
        };
        if let Err(err) = nonblocking {
            self.shared
                .log(format_args!("set_nonblocking failed: {err}"));
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if let Err(err) = self.poller.register(transport.raw_fd(), token, true, false) {
            self.shared.log(format_args!("register failed: {err}"));
            return;
        }
        let waker = self.make_waker();
        let conn = Conn {
            transport,
            peer,
            decoder: Decoder::new(),
            outbound: Arc::new(Outbound::new(self.outbound_capacity, waker)),
            requests: Arc::new(ConnRequests::new()),
            submit_retries: Arc::new(AtomicU64::new(0)),
            wbuf: Vec::new(),
            wpos: 0,
            greeted: false,
            want_write: false,
            closing: false,
        };
        self.shared
            .log(format_args!("conn {token} accepted ({})", conn.peer));
        self.conns.insert(token, conn);
    }

    fn make_waker(&self) -> Box<dyn Fn() + Send + Sync> {
        match self.wake_tx.try_clone() {
            Ok(tx) => Box::new(move || {
                let _ = (&tx).write(&[1u8]);
            }),
            // Out of fds: fall back to a no-op waker; the loop still
            // drains on its next readiness event.
            Err(_) => Box::new(|| {}),
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut sink = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut sink) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn read_conn(&mut self, token: u64) -> ConnFate {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(conn) => conn,
                None => return ConnFate::Alive,
            };
            match conn.transport.read(&mut scratch) {
                Ok(0) => return ConnFate::Dead,
                Ok(n) => {
                    conn.decoder.feed(&scratch[..n]);
                    if self.process_frames(token) == ConnFate::Dead {
                        return ConnFate::Dead;
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => return ConnFate::Alive,
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return ConnFate::Dead,
            }
        }
    }

    fn process_frames(&mut self, token: u64) -> ConnFate {
        loop {
            let conn = match self.conns.get_mut(&token) {
                Some(conn) => conn,
                None => return ConnFate::Alive,
            };
            if conn.closing {
                return ConnFate::Alive;
            }
            match conn.decoder.next_frame() {
                Ok(Some(frame)) => {
                    if self.handle_frame(token, frame) == ConnFate::Dead {
                        return ConnFate::Dead;
                    }
                }
                Ok(None) => return ConnFate::Alive,
                Err(err) => {
                    let _ = conn.outbound.send_now(
                        Frame::Error {
                            id: 0,
                            code: ErrorCode::Malformed,
                            detail: err.to_string(),
                        }
                        .encode(),
                    );
                    conn.closing = true;
                    self.shared
                        .log(format_args!("conn {token} protocol error: {err}"));
                    return ConnFate::Alive;
                }
            }
        }
    }

    fn handle_frame(&mut self, token: u64, frame: Frame) -> ConnFate {
        let conn = match self.conns.get_mut(&token) {
            Some(conn) => conn,
            None => return ConnFate::Alive,
        };
        if !conn.greeted {
            return match frame {
                Frame::Hello { version } if version == PROTOCOL_VERSION => {
                    conn.greeted = true;
                    let _ = conn.outbound.send_now(
                        Frame::HelloAck {
                            version: PROTOCOL_VERSION,
                        }
                        .encode(),
                    );
                    ConnFate::Alive
                }
                Frame::Hello { version } => {
                    let _ = conn.outbound.send_now(
                        Frame::Error {
                            id: 0,
                            code: ErrorCode::UnsupportedVersion,
                            detail: format!(
                                "client speaks protocol {version}, server speaks {PROTOCOL_VERSION}"
                            ),
                        }
                        .encode(),
                    );
                    conn.closing = true;
                    ConnFate::Alive
                }
                _ => {
                    let _ = conn.outbound.send_now(
                        Frame::Error {
                            id: 0,
                            code: ErrorCode::Malformed,
                            detail: "expected Hello before any other frame".to_owned(),
                        }
                        .encode(),
                    );
                    conn.closing = true;
                    ConnFate::Alive
                }
            };
        }
        match frame {
            Frame::Hello { .. } => {
                let _ = conn.outbound.send_now(
                    Frame::Error {
                        id: 0,
                        code: ErrorCode::Malformed,
                        detail: "duplicate Hello".to_owned(),
                    }
                    .encode(),
                );
                conn.closing = true;
                ConnFate::Alive
            }
            Frame::Request {
                id,
                formula,
                spec,
                count,
                master_seed,
                budget_micros,
            } => {
                self.dispatch_request(token, id, formula, spec, count, master_seed, budget_micros);
                ConnFate::Alive
            }
            Frame::Cancel { id } => {
                conn.requests.cancel(id);
                ConnFate::Alive
            }
            Frame::HealthReq => {
                let mut health = self.shared.registry.health();
                health.connections = self.conns.len() as u64;
                let conn = match self.conns.get_mut(&token) {
                    Some(conn) => conn,
                    None => return ConnFate::Alive,
                };
                let _ = conn.outbound.send_now(Frame::Health(health).encode());
                ConnFate::Alive
            }
            Frame::Shutdown => {
                if self.shared.allow_shutdown {
                    self.shared
                        .log(format_args!("conn {token} requested shutdown"));
                    self.shared.stop.store(true, Ordering::Release);
                } else {
                    let _ = conn.outbound.send_now(
                        Frame::Error {
                            id: 0,
                            code: ErrorCode::ShutdownDisabled,
                            detail: "daemon was not started with --allow-shutdown".to_owned(),
                        }
                        .encode(),
                    );
                }
                ConnFate::Alive
            }
            // Server→client frames arriving from a client are protocol
            // errors.
            Frame::HelloAck { .. }
            | Frame::StreamBegin { .. }
            | Frame::Chunk { .. }
            | Frame::Done { .. }
            | Frame::Error { .. }
            | Frame::Health(_) => {
                let _ = conn.outbound.send_now(
                    Frame::Error {
                        id: 0,
                        code: ErrorCode::Malformed,
                        detail: "response-direction frame sent by client".to_owned(),
                    }
                    .encode(),
                );
                conn.closing = true;
                ConnFate::Alive
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // lint: wire request fields arrive as one tuple-shaped frame
    fn dispatch_request(
        &mut self,
        token: u64,
        id: u64,
        formula: FormulaRef,
        spec: WireSpec,
        count: u64,
        master_seed: u64,
        budget_micros: u64,
    ) {
        let conn = match self.conns.get_mut(&token) {
            Some(conn) => conn,
            None => return,
        };
        let cancel = match conn.requests.begin(id) {
            Some(flag) => flag,
            None => {
                let _ = conn.outbound.send_now(
                    Frame::Error {
                        id,
                        code: ErrorCode::Malformed,
                        detail: format!("request id {id} is already in flight"),
                    }
                    .encode(),
                );
                return;
            }
        };
        let shared = Arc::clone(&self.shared);
        let outbound = Arc::clone(&conn.outbound);
        let requests = Arc::clone(&conn.requests);
        let submit_retries = Arc::clone(&conn.submit_retries);
        let worker = conc::thread::spawn(move || {
            let resolved = match &formula {
                FormulaRef::Inline(bytes) => shared.registry.resolve_inline(bytes, &spec),
                FormulaRef::Fingerprint(fp) => shared.registry.resolve_fingerprint(*fp),
            };
            match resolved {
                Err((code, detail)) => {
                    let _ = outbound.send_now(
                        Frame::Error {
                            id,
                            code,
                            detail: detail.clone(),
                        }
                        .encode(),
                    );
                    requests.finish(id);
                    shared.log(format_args!(
                        "conn {token} req {id}: rejected ({}) {detail}",
                        code.name()
                    ));
                }
                Ok(entry) => {
                    let mut request = SampleRequest::new(count as usize, master_seed);
                    if budget_micros > 0 {
                        request = request.with_budget(Duration::from_micros(budget_micros));
                    }
                    let job = RequestJob {
                        id,
                        request,
                        fingerprint: entry.fingerprint,
                        sampling_set: entry.sampling_set.clone(),
                    };
                    let end = run_request(
                        &entry.service,
                        job,
                        &outbound,
                        &cancel,
                        &submit_retries,
                        shared.submit_retry_budget,
                    );
                    requests.finish(id);
                    let health = entry.service.health();
                    shared.log(format_args!(
                        "conn {token} req {id}: {end:?} fp={:016x} submit_retries={} \
                         outbound_bytes={} pending_requests={} queued_items={}",
                        entry.fingerprint,
                        submit_retries.load(Ordering::Relaxed),
                        outbound.queued_bytes(),
                        health.pending_requests,
                        health.queued_items,
                    ));
                }
            }
        });
        self.workers.push(worker);
    }

    /// Round-robin drain: give each connection a bounded byte slice per
    /// round, looping until nobody makes progress. Fairness is the
    /// point — a firehose stream cannot monopolize the loop.
    fn drain_phase(&mut self) {
        loop {
            let mut tokens: Vec<u64> = self.conns.keys().copied().collect();
            tokens.sort_unstable();
            if tokens.is_empty() {
                return;
            }
            self.rr_cursor = self.rr_cursor.wrapping_add(1) % tokens.len();
            tokens.rotate_left(self.rr_cursor);
            let mut progressed = false;
            let mut dead: Vec<(u64, &'static str)> = Vec::new();
            for &token in &tokens {
                match self.flush_conn(token) {
                    FlushResult::Progress => progressed = true,
                    FlushResult::Idle => {}
                    FlushResult::Dead(reason) => dead.push((token, reason)),
                }
            }
            let had_dead = !dead.is_empty();
            for (token, reason) in dead {
                self.disconnect(token, reason);
            }
            if !progressed && !had_dead {
                return;
            }
        }
    }

    fn flush_conn(&mut self, token: u64) -> FlushResult {
        let conn = match self.conns.get_mut(&token) {
            Some(conn) => conn,
            None => return FlushResult::Idle,
        };
        let mut written = 0usize;
        let mut progressed = false;
        loop {
            if conn.wpos >= conn.wbuf.len() {
                match conn.outbound.pop() {
                    Some(frame) => {
                        conn.wbuf = frame;
                        conn.wpos = 0;
                    }
                    None => break,
                }
            }
            if written >= DRAIN_SLICE {
                // Round slice exhausted; come back next round so other
                // connections get their turn.
                return FlushResult::Progress;
            }
            let end = conn.wbuf.len().min(conn.wpos + (DRAIN_SLICE - written));
            match conn.transport.write(&conn.wbuf[conn.wpos..end]) {
                Ok(0) => return FlushResult::Dead("write returned 0"),
                Ok(n) => {
                    conn.wpos += n;
                    written += n;
                    progressed = true;
                }
                Err(err) if err.kind() == io::ErrorKind::WouldBlock => {
                    if !conn.want_write {
                        conn.want_write = true;
                        let _ = self
                            .poller
                            .reregister(conn.transport.raw_fd(), token, true, true);
                    }
                    return if progressed {
                        FlushResult::Progress
                    } else {
                        FlushResult::Idle
                    };
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return FlushResult::Dead("write error"),
            }
        }
        // Fully drained.
        if conn.want_write {
            conn.want_write = false;
            let _ = self
                .poller
                .reregister(conn.transport.raw_fd(), token, true, false);
        }
        if conn.closing && !conn.has_pending_write() {
            return FlushResult::Dead("closed after protocol error");
        }
        if progressed {
            FlushResult::Progress
        } else {
            FlushResult::Idle
        }
    }

    fn disconnect(&mut self, token: u64, reason: &str) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.transport.raw_fd());
            conn.outbound.close();
            conn.requests.cancel_all();
            self.shared.log(format_args!(
                "conn {token} closed ({}): {reason}; submit_retries={} in_flight={}",
                conn.peer,
                conn.submit_retries.load(Ordering::Relaxed),
                conn.requests.active(),
            ));
        }
    }

    fn teardown(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.disconnect(token, "daemon shutting down");
        }
        self.tcp_listener = None;
        self.unix_listener = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.shared.log(format_args!("event loop exited"));
    }
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum ConnFate {
    Alive,
    Dead,
}

enum FlushResult {
    Progress,
    Idle,
    Dead(&'static str),
}
