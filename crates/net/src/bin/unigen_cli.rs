//! Command-line front end: sample almost-uniform witnesses from a DIMACS CNF
//! file, in the spirit of the original UniGen tool.
//!
//! ```text
//! unigen_cli [OPTIONS] <FILE.cnf>
//! unigen_cli batch [OPTIONS] <FILE.cnf>
//! unigen_cli serve [--listen ADDR] [--unix PATH] [SERVE-OPTIONS] [FILE.cnf ...]
//! unigen_cli client (--connect ADDR | --unix PATH) [CLIENT-OPTIONS] [FILE.cnf]
//!
//! Options:
//!   --samples N      number of witnesses to generate            [default: 10]
//!   --epsilon E      tolerance ε (> 1.71)                       [default: 6.0]
//!   --seed S         random seed                                [default: 1]
//!   --timeout SECS   per-solver-call budget in seconds          [default: none]
//!   --jobs N         sample on N worker threads (0 = all cores) [default: serial]
//!   --certify        verify a DRAT-style proof of every cell online
//!   --proof-dump F   write the raw proof stream to F (serial only; implies
//!                    --certify)
//!   --verbose        print per-sample statistics to stderr
//!
//! batch-only options:
//!   --requests R     split the samples over R service requests  [default: 1]
//!   --queue N        bounded request-queue capacity             [default: 16]
//!
//! serve options (daemon mode; see `unigen_net::server`):
//!   --listen ADDR    TCP listen address (e.g. 127.0.0.1:4171)
//!   --unix PATH      unix-domain socket path
//!   --jobs N         worker threads per prepared service
//!   --queue N        request-queue capacity per prepared service
//!   --max-formulas N prepared-formula registry capacity         [default: 64]
//!   --allow-shutdown honor wire Shutdown frames
//!   --quiet          suppress serve log lines
//!   positional FILE.cnf arguments are preloaded into the registry
//!
//! client options (talk to a daemon):
//!   --connect ADDR   TCP address of the daemon
//!   --unix PATH      unix-domain socket of the daemon
//!   --samples N      witnesses to request                       [default: 10]
//!   --seed S         master seed for the batch                  [default: 1]
//!   --epsilon E      tolerance ε sent in the spec               [default: 6.0]
//!   --prepare-seed S prepare-phase seed sent in the spec
//!   --timeout SECS   per-item budget in seconds
//!   --fingerprint H  request by 16-hex-digit registry fingerprint
//!   --health         print the daemon's health snapshot
//!   --selftest       also run the same batch in-process and assert the wire
//!                    witnesses are bit-identical (needs FILE.cnf)
//!   --cancel-demo    submit a second larger request and cancel it mid-stream
//!   --shutdown       ask the daemon to exit (needs --allow-shutdown)
//! ```
//!
//! The `batch` subcommand drives the request/response [`SamplerService`]:
//! it builds one UniGen sampler through [`SamplerBuilder`], spawns the
//! persistent work-stealing pool once, splits `--samples` over
//! `--requests` typed [`SampleRequest`]s (request `r` uses master seed
//! `seed + r`), streams each response's witnesses as its index-ordered
//! prefix completes, and prints the per-request round-trip statistics
//! (round-trip time, total queue wait, stolen work items, submission
//! retries, and the robustness counters — interrupted cells, fault-recovery
//! retries, degradations, injected faults). A `QueueFull` rejection from
//! the bounded request queue is absorbed by a bounded deterministic
//! backoff (exponential base plus seeded SplitMix64 jitter) before falling
//! back to the blocking submit path. The run ends with a
//! [`unigen::ServiceHealth`] summary.
//!
//! On the legacy path, `--jobs` still works but is deprecated in favour of
//! `batch --jobs`: sample `i` draws its randomness from a dedicated stream
//! derived from `(seed, i)`, so the emitted witness sequence is identical
//! for every worker count (including `--jobs 1`) — unless `--timeout` is
//! also given: a per-`BSAT` cutoff fires based on each worker solver's
//! private accumulated state, which can make different samples fail at
//! different worker counts (the CLI warns when the two flags are combined;
//! the same caveat applies to `batch --timeout`). Without `--jobs`, the
//! historical serial behaviour (one RNG consumed across all samples) is
//! preserved.
//!
//! The sampling set is taken from `c ind … 0` comment lines in the input
//! file (the convention of the original UniGen benchmark suite); without
//! them, the full support is used.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use unigen::{
    OutcomeKind, ParallelSampler, PreparedMode, SampleOutcome, SampleRequest, SamplerBuilder,
    SamplerService, ServiceConfig, TrySubmitError, UniGen, WitnessSampler,
};
use unigen_cnf::dimacs;
use unigen_net::client::{Client, ClientError, ClientRequest};
use unigen_net::server::{default_spec, ServeConfig};
use unigen_net::wire::{ErrorCode, WireOutcomeKind};
use unigen_satsolver::Budget;

#[derive(Debug, Clone)]
struct CliOptions {
    file: String,
    samples: usize,
    epsilon: f64,
    seed: u64,
    timeout: Option<Duration>,
    /// `None` = historical serial sampling; `Some(0)` = one worker per core;
    /// `Some(n)` = n workers (deterministic per-index streams either way).
    jobs: Option<usize>,
    /// Certified enumeration: solver-side proof logging plus the online
    /// independent checker.
    certify: bool,
    /// Write the raw proof stream here after a serial run (implies
    /// `certify`); `cargo xtask certify` re-checks it offline.
    proof_dump: Option<String>,
    verbose: bool,
    /// `batch` subcommand: drive the request/response service.
    batch: bool,
    /// Number of service requests the samples are split over (batch only).
    requests: usize,
    /// Request-queue capacity of the service (batch only).
    queue: usize,
}

fn usage() -> &'static str {
    "usage: unigen_cli [batch] [--samples N] [--epsilon E] [--seed S] [--timeout SECS] \
     [--jobs N] [--requests R] [--queue N] [--certify] [--proof-dump FILE] [--verbose] <FILE.cnf>\n\
     (daemon mode: `unigen_cli serve --help`; remote sampling: `unigen_cli client --help`)"
}

fn serve_usage() -> &'static str {
    "usage: unigen_cli serve [--listen ADDR] [--unix PATH] [--jobs N] [--queue N] \
     [--max-formulas N] [--allow-shutdown] [--quiet] [FILE.cnf ...]\n\
     at least one of --listen / --unix is required; positional files are preloaded"
}

fn client_usage() -> &'static str {
    "usage: unigen_cli client (--connect ADDR | --unix PATH) [--samples N] [--seed S] \
     [--epsilon E] [--prepare-seed S] [--timeout SECS] [--fingerprint HEX] [--health] \
     [--selftest] [--cancel-demo] [--shutdown] [FILE.cnf]"
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        file: String::new(),
        samples: 10,
        epsilon: 6.0,
        seed: 1,
        timeout: None,
        jobs: None,
        certify: false,
        proof_dump: None,
        verbose: false,
        batch: false,
        requests: 1,
        queue: 16,
    };
    let mut args = args;
    if args.first().map(String::as_str) == Some("batch") {
        options.batch = true;
        args = &args[1..];
    }
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--samples" => {
                options.samples = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--samples needs a positive integer")?;
            }
            "--epsilon" => {
                options.epsilon = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--epsilon needs a number > 1.71")?;
            }
            "--seed" => {
                options.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an unsigned integer")?;
            }
            "--timeout" => {
                let secs: u64 = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--timeout needs a number of seconds")?;
                options.timeout = Some(Duration::from_secs(secs));
            }
            "--jobs" => {
                options.jobs = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--jobs needs an unsigned integer (0 = all cores)")?,
                );
            }
            "--requests" => {
                options.requests = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &usize| r > 0)
                    .ok_or("--requests needs a positive integer")?;
                if !options.batch {
                    return Err(format!("--requests is a `batch` option\n{}", usage()));
                }
            }
            "--queue" => {
                options.queue = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&q: &usize| q > 0)
                    .ok_or("--queue needs a positive integer")?;
                if !options.batch {
                    return Err(format!("--queue is a `batch` option\n{}", usage()));
                }
            }
            "--certify" => options.certify = true,
            "--proof-dump" => {
                let path = iter.next().ok_or("--proof-dump needs a file path")?;
                options.proof_dump = Some(path.clone());
                options.certify = true;
            }
            "--verbose" => options.verbose = true,
            "--help" | "-h" => return Err(usage().to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown option `{other}`\n{}", usage()));
            }
            file => {
                if !options.file.is_empty() {
                    return Err(format!("unexpected extra argument `{file}`\n{}", usage()));
                }
                options.file = file.to_string();
            }
        }
    }
    if options.file.is_empty() {
        return Err(usage().to_string());
    }
    if options.proof_dump.is_some() && (options.batch || options.jobs.is_some()) {
        return Err(
            "--proof-dump needs the serial path (no `batch`, no --jobs): worker solver \
             clones fork the proof stream, so only the serial sampler's stream is complete"
                .to_string(),
        );
    }
    Ok(options)
}

fn run(options: &CliOptions) -> Result<(), String> {
    let formula = dimacs::parse_file(&options.file)
        .map_err(|e| format!("cannot read `{}`: {e}", options.file))?;
    let sampling_set = formula.sampling_set_or_all();
    eprintln!(
        "c parsed `{}`: {} variables, {} clauses, {} xor clauses, |S| = {}",
        options.file,
        formula.num_vars(),
        formula.num_clauses(),
        formula.num_xor_clauses(),
        sampling_set.len()
    );

    let mut budget = Budget::new();
    if let Some(timeout) = options.timeout {
        budget = budget.with_time_limit(timeout);
    }
    // The unified builder entry point (one surface for every family; this
    // front end always asks for UniGen).
    let built = SamplerBuilder::unigen(&formula)
        .epsilon(options.epsilon)
        .seed(options.seed)
        .bsat_budget(budget)
        .certify(options.certify)
        .build()
        // BuildError's Display already carries the "preparation failed" /
        // "option not supported" context.
        .map_err(|e| e.to_string())?;
    let mut sampler: UniGen = built
        .as_unigen()
        .cloned()
        .expect("a UniGen spec builds a UniGen sampler");
    match sampler.prepared_mode() {
        PreparedMode::Enumerated { witnesses } => {
            eprintln!(
                "c preparation: {} witnesses enumerated directly",
                witnesses.len()
            );
        }
        PreparedMode::Hashed { approx_count, q } => {
            eprintln!(
                "c preparation: ApproxMC estimate {approx_count}, hash widths {}..{q}",
                q.saturating_sub(3)
            );
        }
    }

    // Prints one outcome (witness line or failure marker) and returns
    // whether it was a success.
    let emit = |i: usize, outcome: &SampleOutcome| -> bool {
        let success = match &outcome.witness {
            Some(witness) => {
                // Print the witness as the projection on the sampling set in
                // DIMACS literal form, matching the original tool's output.
                let lits: Vec<String> = witness
                    .project(&sampling_set)
                    .to_lits()
                    .iter()
                    .map(|l| l.to_string())
                    .collect();
                println!("v {} 0", lits.join(" "));
                true
            }
            None => {
                // The typed failure taxonomy: a genuine ⊥ (the algorithm's
                // own reject), a budget interruption (retryable), or an
                // injected/unrecovered fault.
                println!("c sample {i} failed ({})", kind_name(outcome.kind));
                false
            }
        };
        if options.verbose {
            eprintln!(
                "c sample {i}: kind={} bsat_calls={} avg_xor_len={:.1} time={:?} steals={} \
                 queue_wait={:?} interrupted_cells={} retries={} degradations={} faults={}",
                kind_name(outcome.kind),
                outcome.stats.bsat_calls,
                outcome.stats.average_xor_length(),
                outcome.stats.wall_time,
                outcome.stats.steals,
                outcome.stats.queue_wait,
                outcome.stats.interrupted_cells,
                outcome.stats.retries,
                outcome.stats.degradations,
                outcome.stats.faults_injected
            );
            if outcome.stats.cert_checks > 0 {
                eprintln!(
                    "c sample {i}: cert_checks={} proof_bytes={} cert_time={:?}",
                    outcome.stats.cert_checks, outcome.stats.proof_bytes, outcome.stats.cert_time
                );
            }
        }
        success
    };

    if options.batch {
        return run_batch(options, sampler, &emit);
    }

    let mut produced = 0usize;
    match options.jobs {
        Some(jobs) => {
            eprintln!(
                "c note: the `--jobs` flag path is deprecated; prefer the service-backed \
                 `unigen_cli batch --jobs N` subcommand"
            );
            // The deterministic batch path: per-index RNG streams fanned out
            // over a worker pool (0 = one worker per core). The witness
            // sequence is identical for every worker count.
            if options.timeout.is_some() {
                eprintln!(
                    "c warning: --timeout makes BSAT cutoffs depend on per-worker solver state, \
                     so the witness sequence may differ between --jobs values"
                );
            }
            let pool = ParallelSampler::new(sampler.clone());
            let pool = if jobs == 0 {
                pool
            } else {
                pool.with_jobs(jobs)
            };
            eprintln!("c sampling on {} worker thread(s)", pool.jobs());
            for (i, outcome) in pool
                .sample_batch(options.samples, options.seed)
                .iter()
                .enumerate()
            {
                produced += usize::from(emit(i, outcome));
            }
        }
        None => {
            // Historical serial behaviour: one RNG consumed across samples,
            // each witness streamed out as soon as it is produced (no
            // buffering of the whole run).
            let mut rng = StdRng::seed_from_u64(options.seed);
            for i in 0..options.samples {
                let outcome = sampler.sample(&mut rng);
                produced += usize::from(emit(i, &outcome));
            }
        }
    }
    if options.certify {
        if let Some(err) = sampler.cert_error() {
            return Err(format!("proof certification failed: {err}"));
        }
        if let Some(steps) = sampler.certified_steps() {
            eprintln!("c certified: {steps} proof steps verified by the independent checker");
        }
    }
    if let Some(path) = &options.proof_dump {
        let bytes = sampler
            .proof_bytes()
            .map(<[u8]>::to_vec)
            .unwrap_or_default();
        std::fs::write(path, &bytes).map_err(|e| format!("cannot write `{path}`: {e}"))?;
        eprintln!("c proof stream: {} bytes written to `{path}`", bytes.len());
    }
    eprintln!(
        "c produced {produced}/{} witnesses (observed success probability {:.2})",
        options.samples,
        produced as f64 / options.samples.max(1) as f64
    );
    if options.verbose {
        // The persistent incremental solver's lifetime counters: how many
        // per-cell guards were cycled and how much learned knowledge was
        // scoped to cells (retired) versus kept across them (retained).
        // (Under --jobs each worker owns a solver clone; the counters below
        // describe the preparation-phase solver only.)
        if options.jobs.is_some() {
            eprintln!(
                "c solver counters below cover the preparation phase only (workers own clones)"
            );
        }
        let stats = sampler.solver_stats();
        eprintln!("c solver: {stats}");
        eprintln!(
            "c incremental: guards created={} retired={} guarded learned clauses retired={} learned clauses retained={}",
            stats.guards_created,
            stats.guards_retired,
            stats.guarded_learned_retired,
            stats.learned_retained
        );
        // Gauss–Jordan matrix propagation over the guarded hash layers:
        // how many layers were compiled to matrices and what they did.
        eprintln!(
            "c gauss: matrices={} rows={} propagations={} conflicts={} row xors={}",
            stats.gauss_matrices,
            stats.gauss_rows,
            stats.gauss_propagations,
            stats.gauss_conflicts,
            stats.gauss_row_ops
        );
    }
    Ok(())
}

/// Stable lowercase label for an [`OutcomeKind`] in CLI output.
fn kind_name(kind: OutcomeKind) -> &'static str {
    match kind {
        OutcomeKind::Witness => "witness",
        OutcomeKind::Bottom => "bottom",
        OutcomeKind::Interrupted => "interrupted",
        OutcomeKind::Faulted => "faulted",
    }
}

/// One SplitMix64 mixing step — the same generator family the samplers use
/// for their per-index streams, reused here to derive deterministic
/// backoff jitter from the seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Bounded deterministic backoff for a `QueueFull` rejection: exponential
/// base doubling from 250µs (capped at attempt 6) plus a seeded SplitMix64
/// jitter of up to 1ms, so concurrent submitters with different seeds
/// desynchronise instead of retrying in lockstep.
fn backoff_delay(seed: u64, request_index: usize, attempt: usize) -> Duration {
    let base = 250u64 << attempt.min(6) as u32;
    let jitter = splitmix64(seed ^ ((request_index as u64) << 32) ^ attempt as u64) % 1000;
    Duration::from_micros(base + jitter)
}

/// The `batch` subcommand: drive the persistent request/response service and
/// report the round-trip statistics of every request.
fn run_batch(
    options: &CliOptions,
    sampler: UniGen,
    emit: &dyn Fn(usize, &SampleOutcome) -> bool,
) -> Result<(), String> {
    if options.timeout.is_some() {
        eprintln!(
            "c warning: --timeout makes BSAT cutoffs depend on per-worker solver state, \
             so the witness sequence may differ between --jobs values"
        );
    }
    let mut config = ServiceConfig::default().with_queue_capacity(options.queue);
    if let Some(jobs) = options.jobs {
        if jobs > 0 {
            config = config.with_workers(jobs);
        }
    }
    let service = SamplerService::new(sampler, config);
    eprintln!(
        "c service: {} worker thread(s), request queue capacity {}",
        service.workers(),
        service.queue_capacity()
    );

    // Split the samples over the requests (first `remainder` requests get
    // one extra); request r draws from master seed `seed + r`, so distinct
    // requests use provably disjoint RNG stream sets.
    let base = options.samples / options.requests;
    let remainder = options.samples % options.requests;
    let requests: Vec<SampleRequest> = (0..options.requests)
        .map(|r| {
            let count = base + usize::from(r < remainder);
            SampleRequest::new(count, options.seed.wrapping_add(r as u64))
        })
        .filter(|request| request.count > 0)
        .collect();

    // Submit everything up front, absorbing `QueueFull` rejections with a
    // bounded deterministic backoff (seeded jitter, exponential base): the
    // determinism contract makes the retry idempotent, and after the retry
    // budget is spent the submission falls back to the blocking path, so no
    // request is ever dropped.
    const SUBMIT_RETRY_BUDGET: usize = 10;
    let mut handles = Vec::with_capacity(requests.len());
    for (r, &request) in requests.iter().enumerate() {
        let mut submit_retries = 0usize;
        let handle = loop {
            match service.try_submit(request) {
                Ok(handle) => break handle,
                Err(TrySubmitError::QueueFull { request })
                    if submit_retries < SUBMIT_RETRY_BUDGET =>
                {
                    std::thread::sleep(backoff_delay(options.seed, r, submit_retries));
                    submit_retries += 1;
                    debug_assert_eq!(request.count, base + usize::from(r < remainder));
                }
                Err(_) => break service.submit(request),
            }
        };
        handles.push((handle, submit_retries));
    }

    let mut produced = 0usize;
    let mut emitted = 0usize;
    let mut totals = unigen::SampleStats::default();
    for (r, (mut handle, submit_retries)) in handles.into_iter().enumerate() {
        let request = handle.request();
        for outcome in handle.by_ref() {
            produced += usize::from(emit(emitted, &outcome));
            emitted += 1;
        }
        let response = handle.wait();
        totals.accumulate(&response.aggregate_stats);
        eprintln!(
            "c request {r}: seed={} witnesses={}/{} round_trip={:?} queue_wait_total={:?} \
             steals={} submit_retries={submit_retries} interrupted_cells={} retries={} \
             degradations={} faults={}",
            request.master_seed,
            response.successes(),
            request.count,
            response.round_trip,
            response.aggregate_stats.queue_wait,
            response.aggregate_stats.steals,
            response.aggregate_stats.interrupted_cells,
            response.aggregate_stats.retries,
            response.aggregate_stats.degradations,
            response.aggregate_stats.faults_injected
        );
    }

    eprintln!(
        "c produced {produced}/{} witnesses (observed success probability {:.2})",
        options.samples,
        produced as f64 / options.samples.max(1) as f64
    );
    eprintln!(
        "c service totals: bsat_calls={} steals={} queue_wait_total={:?} worker_items={:?} worker_steals={:?}",
        totals.bsat_calls,
        service.steals(),
        totals.queue_wait,
        service.worker_items(),
        service.worker_steals()
    );
    let health = service.health();
    eprintln!(
        "c service health: workers {}/{} alive, panics={} respawns={} item_retries={} faults_injected={}",
        health.alive_workers,
        health.configured_workers,
        health.worker_panics,
        health.respawns,
        health.item_retries,
        health.faults_injected
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// `serve` subcommand: run the network daemon (crates/net)
// ---------------------------------------------------------------------------

fn parse_serve_args(args: &[String]) -> Result<ServeConfig, String> {
    let mut config = ServeConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--listen" => {
                config.tcp = Some(
                    iter.next()
                        .ok_or("--listen needs an address (e.g. 127.0.0.1:4171)")?
                        .clone(),
                );
            }
            "--unix" => {
                config.unix = Some(PathBuf::from(
                    iter.next().ok_or("--unix needs a socket path")?,
                ));
            }
            "--jobs" => {
                config.workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--jobs needs an unsigned integer (0 = service default)")?;
            }
            "--queue" => {
                config.queue_capacity = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--queue needs an unsigned integer (0 = service default)")?;
            }
            "--max-formulas" => {
                config.max_formulas = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n: &usize| n > 0)
                    .ok_or("--max-formulas needs a positive integer")?;
            }
            "--allow-shutdown" => config.allow_shutdown = true,
            "--quiet" => config.quiet = true,
            "--help" | "-h" => return Err(serve_usage().to_string()),
            other if other.starts_with("--") => {
                return Err(format!("unknown serve option `{other}`\n{}", serve_usage()));
            }
            file => {
                let text = std::fs::read_to_string(file)
                    .map_err(|e| format!("cannot read preload file `{file}`: {e}"))?;
                config.preload.push(text);
            }
        }
    }
    if config.tcp.is_none() && config.unix.is_none() {
        return Err(format!(
            "serve needs at least one listener\n{}",
            serve_usage()
        ));
    }
    Ok(config)
}

fn run_serve(config: ServeConfig) -> Result<(), String> {
    let handle = unigen_net::serve(config).map_err(|e| e.to_string())?;
    // Block until a wire `Shutdown` frame stops the loop (requires
    // --allow-shutdown) or the process is killed.
    handle.wait();
    Ok(())
}

// ---------------------------------------------------------------------------
// `client` subcommand: talk to a daemon over TCP or a unix socket
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct ClientOptions {
    /// TCP address of the daemon (mutually exclusive with `unix`).
    connect: Option<String>,
    /// Unix-domain socket path of the daemon.
    unix: Option<PathBuf>,
    /// DIMACS file to send inline (omit when using `fingerprint`).
    file: Option<String>,
    /// Request a formula already prepared in the server's registry.
    fingerprint: Option<u64>,
    samples: u64,
    /// Master seed of the requested batch.
    seed: u64,
    epsilon: f64,
    /// Prepare-phase seed sent in the spec (`None` = server default).
    prepare_seed: Option<u64>,
    /// Per-item budget in seconds (0 on the wire = unbounded).
    timeout: Option<u64>,
    health: bool,
    /// Re-run the batch in-process and assert wire bit-identity.
    selftest: bool,
    /// Submit and cancel a second, larger request mid-stream.
    cancel_demo: bool,
    /// Send a `Shutdown` frame after everything else.
    shutdown: bool,
}

fn parse_client_args(args: &[String]) -> Result<ClientOptions, String> {
    let mut options = ClientOptions {
        connect: None,
        unix: None,
        file: None,
        fingerprint: None,
        samples: 10,
        seed: 1,
        epsilon: 6.0,
        prepare_seed: None,
        timeout: None,
        health: false,
        selftest: false,
        cancel_demo: false,
        shutdown: false,
    };
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--connect" => {
                options.connect = Some(iter.next().ok_or("--connect needs an address")?.clone());
            }
            "--unix" => {
                options.unix = Some(PathBuf::from(
                    iter.next().ok_or("--unix needs a socket path")?,
                ));
            }
            "--samples" => {
                options.samples = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--samples needs an unsigned integer")?;
            }
            "--seed" => {
                options.seed = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an unsigned integer")?;
            }
            "--epsilon" => {
                options.epsilon = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--epsilon needs a number > 1.71")?;
            }
            "--prepare-seed" => {
                options.prepare_seed = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--prepare-seed needs an unsigned integer")?,
                );
            }
            "--timeout" => {
                options.timeout = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--timeout needs a number of seconds")?,
                );
            }
            "--fingerprint" => {
                let hex = iter.next().ok_or("--fingerprint needs 16 hex digits")?;
                options.fingerprint = Some(
                    u64::from_str_radix(hex.trim_start_matches("0x"), 16)
                        .map_err(|_| "--fingerprint needs 16 hex digits".to_string())?,
                );
            }
            "--health" => options.health = true,
            "--selftest" => options.selftest = true,
            "--cancel-demo" => options.cancel_demo = true,
            "--shutdown" => options.shutdown = true,
            "--help" | "-h" => return Err(client_usage().to_string()),
            other if other.starts_with("--") => {
                return Err(format!(
                    "unknown client option `{other}`\n{}",
                    client_usage()
                ));
            }
            file => {
                if options.file.is_some() {
                    return Err(format!(
                        "unexpected extra argument `{file}`\n{}",
                        client_usage()
                    ));
                }
                options.file = Some(file.to_string());
            }
        }
    }
    match (&options.connect, &options.unix) {
        (Some(_), Some(_)) => {
            return Err(format!(
                "--connect and --unix are mutually exclusive\n{}",
                client_usage()
            ))
        }
        (None, None) => {
            return Err(format!(
                "client needs --connect ADDR or --unix PATH\n{}",
                client_usage()
            ))
        }
        _ => {}
    }
    if options.file.is_some() && options.fingerprint.is_some() {
        return Err("pass either FILE.cnf or --fingerprint, not both".to_string());
    }
    if options.file.is_none()
        && options.fingerprint.is_none()
        && !options.health
        && !options.shutdown
    {
        return Err(format!(
            "nothing to do: pass FILE.cnf, --fingerprint, --health, or --shutdown\n{}",
            client_usage()
        ));
    }
    if options.selftest && options.file.is_none() {
        return Err("--selftest needs the FILE.cnf positional argument".to_string());
    }
    if options.cancel_demo && options.file.is_none() && options.fingerprint.is_none() {
        return Err("--cancel-demo needs FILE.cnf or --fingerprint".to_string());
    }
    Ok(options)
}

/// Print a wire witness as a DIMACS `v` line (projection on the
/// sampling set, matching the in-process front end's output).
fn print_wire_witness(sampling_set: &[u32], bits: &[bool]) {
    let lits: Vec<String> = sampling_set
        .iter()
        .zip(bits)
        .map(|(&var, &value)| {
            let lit = i64::from(var) + 1;
            if value { lit } else { -lit }.to_string()
        })
        .collect();
    println!("v {} 0", lits.join(" "));
}

fn wire_kind_name(kind: WireOutcomeKind) -> &'static str {
    match kind {
        WireOutcomeKind::Witness => "witness",
        WireOutcomeKind::Bottom => "bottom",
        WireOutcomeKind::Interrupted => "interrupted",
        WireOutcomeKind::Faulted => "faulted",
    }
}

/// Re-run the batch in-process with the same spec and assert the wire
/// outcomes are bit-identical — the end-to-end determinism contract.
fn run_selftest(
    options: &ClientOptions,
    batch: &unigen_net::WireBatch,
    prepare_seed: u64,
) -> Result<(), String> {
    let file = options
        .file
        .as_ref()
        .ok_or("--selftest needs the FILE.cnf positional argument")?;
    let formula = dimacs::parse_file(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    let sampling_set = formula.sampling_set_or_all();
    let wire_set: Vec<u32> = sampling_set.iter().map(|v| v.index() as u32).collect();
    if batch.sampling_set != wire_set {
        return Err(format!(
            "selftest: wire sampling set {:?} != local {:?}",
            batch.sampling_set, wire_set
        ));
    }
    let built = SamplerBuilder::unigen(&formula)
        .epsilon(options.epsilon)
        .seed(prepare_seed)
        .build()
        .map_err(|e| format!("selftest: in-process build failed: {e}"))?;
    let mut sampler: UniGen = built
        .as_unigen()
        .cloned()
        .expect("a UniGen spec builds a UniGen sampler");
    let reference = sampler.sample_batch(options.samples as usize, options.seed);
    if reference.len() != batch.outcomes.len() {
        return Err(format!(
            "selftest: wire batch has {} outcomes, in-process has {}",
            batch.outcomes.len(),
            reference.len()
        ));
    }
    for (i, (wire, local)) in batch.outcomes.iter().zip(&reference).enumerate() {
        let local_kind = match local.kind {
            OutcomeKind::Witness => WireOutcomeKind::Witness,
            OutcomeKind::Bottom => WireOutcomeKind::Bottom,
            OutcomeKind::Interrupted => WireOutcomeKind::Interrupted,
            OutcomeKind::Faulted => WireOutcomeKind::Faulted,
        };
        if wire.kind != local_kind {
            return Err(format!(
                "selftest: outcome {i} kind mismatch: wire {} vs in-process {}",
                wire_kind_name(wire.kind),
                kind_name(local.kind)
            ));
        }
        let local_bits: Option<Vec<bool>> = local
            .witness
            .as_ref()
            .map(|model| sampling_set.iter().map(|&v| model.value(v)).collect());
        if wire.witness != local_bits {
            return Err(format!("selftest: outcome {i} witness bits differ"));
        }
    }
    eprintln!(
        "c selftest: {} outcomes bit-identical to in-process sample_batch",
        reference.len()
    );
    Ok(())
}

fn run_client(options: &ClientOptions) -> Result<(), String> {
    let mut client = match (&options.connect, &options.unix) {
        (Some(addr), None) => Client::connect_tcp(addr),
        (None, Some(path)) => Client::connect_unix(path),
        _ => unreachable!("parse_client_args enforces exactly one endpoint"),
    }
    .map_err(|e| e.to_string())?;

    let request = match (&options.file, options.fingerprint) {
        (Some(file), None) => {
            let text =
                std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
            Some(ClientRequest::inline(&text, options.samples, options.seed))
        }
        (None, Some(fp)) => Some(ClientRequest::by_fingerprint(
            fp,
            options.samples,
            options.seed,
        )),
        (None, None) => None,
        (Some(_), Some(_)) => unreachable!("parse_client_args rejects both"),
    };

    if let Some(request) = request {
        let mut spec = default_spec();
        spec.epsilon_bits = Some(options.epsilon.to_bits());
        if let Some(seed) = options.prepare_seed {
            spec.prepare_seed = seed;
        }
        let mut request = request.with_spec(spec);
        if let Some(secs) = options.timeout {
            request = request.with_budget_micros(secs.saturating_mul(1_000_000));
        }

        let main_id = client.submit(&request).map_err(|e| e.to_string())?;
        // Submit the demo request *before* collecting the main one so its
        // stream is genuinely in flight when the cancel lands.
        let demo_id = if options.cancel_demo {
            let demo = ClientRequest {
                count: options.samples.saturating_mul(8).max(256),
                master_seed: options.seed.wrapping_add(1),
                ..request.clone()
            };
            Some(client.submit(&demo).map_err(|e| e.to_string())?)
        } else {
            None
        };

        let batch = client.collect(main_id).map_err(|e| e.to_string())?;
        eprintln!(
            "c client: fingerprint {:016x}, |S| = {}",
            batch.fingerprint,
            batch.sampling_set.len()
        );
        for outcome in &batch.outcomes {
            match &outcome.witness {
                Some(bits) => print_wire_witness(&batch.sampling_set, bits),
                None => println!(
                    "c sample {} failed ({})",
                    outcome.index,
                    wire_kind_name(outcome.kind)
                ),
            }
        }
        eprintln!(
            "c client: {} witnesses / {} requested, bsat_calls={} steals={} retries={} \
             degradations={} faults={} queue_wait={}us wall={}us",
            batch.successes,
            options.samples,
            batch.stats.bsat_calls,
            batch.stats.steals,
            batch.stats.retries,
            batch.stats.degradations,
            batch.stats.faults_injected,
            batch.stats.queue_wait_micros,
            batch.stats.wall_micros
        );

        if let Some(id) = demo_id {
            client.cancel(id).map_err(|e| e.to_string())?;
            match client.collect(id) {
                Err(ClientError::Rejected {
                    code: ErrorCode::Cancelled,
                    ..
                }) => {
                    eprintln!("c cancel-demo: request {id} cancelled mid-stream");
                }
                Ok(done) => {
                    // The demo batch raced to completion before the cancel
                    // frame arrived; that is legal, just note it.
                    eprintln!(
                        "c cancel-demo: request {id} finished before the cancel landed \
                         ({} outcomes)",
                        done.outcomes.len()
                    );
                }
                Err(err) => return Err(format!("cancel-demo failed: {err}")),
            }
        }

        if options.selftest {
            run_selftest(options, &batch, spec.prepare_seed)?;
        }
    }

    if options.health {
        let health = client.health().map_err(|e| e.to_string())?;
        eprintln!(
            "c health: services={} workers={}/{} panics={} respawns={} item_retries={} \
             faults={} pending_requests={} queued_items={} connections={}",
            health.services,
            health.alive_workers,
            health.configured_workers,
            health.worker_panics,
            health.respawns,
            health.item_retries,
            health.faults_injected,
            health.pending_requests,
            health.queued_items,
            health.connections
        );
    }

    if options.shutdown {
        client.shutdown_server().map_err(|e| e.to_string())?;
        eprintln!("c shutdown: server acknowledged by closing the connection");
    }

    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run_result = match args.first().map(String::as_str) {
        Some("serve") => match parse_serve_args(&args[1..]) {
            Ok(config) => run_serve(config),
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        },
        Some("client") => match parse_client_args(&args[1..]) {
            Ok(options) => run_client(&options),
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        },
        _ => match parse_args(&args) {
            Ok(options) => run(&options),
            Err(message) => {
                eprintln!("{message}");
                return ExitCode::FAILURE;
            }
        },
    };
    match run_result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_defaults_and_file() {
        let options = parse_args(&args(&["input.cnf"])).unwrap();
        assert_eq!(options.file, "input.cnf");
        assert_eq!(options.samples, 10);
        assert_eq!(options.epsilon, 6.0);
        assert!(!options.verbose);
    }

    #[test]
    fn parses_all_options() {
        let options = parse_args(&args(&[
            "--samples",
            "25",
            "--epsilon",
            "3.5",
            "--seed",
            "9",
            "--timeout",
            "30",
            "--jobs",
            "4",
            "--verbose",
            "foo.cnf",
        ]))
        .unwrap();
        assert_eq!(options.samples, 25);
        assert_eq!(options.epsilon, 3.5);
        assert_eq!(options.seed, 9);
        assert_eq!(options.timeout, Some(Duration::from_secs(30)));
        assert_eq!(options.jobs, Some(4));
        assert!(options.verbose);
        assert_eq!(options.file, "foo.cnf");
    }

    #[test]
    fn jobs_defaults_to_serial_and_rejects_garbage() {
        assert_eq!(parse_args(&args(&["a.cnf"])).unwrap().jobs, None);
        assert_eq!(
            parse_args(&args(&["--jobs", "0", "a.cnf"])).unwrap().jobs,
            Some(0)
        );
        assert!(parse_args(&args(&["--jobs", "many", "a.cnf"])).is_err());
        assert!(parse_args(&args(&["--jobs"])).is_err());
    }

    #[test]
    fn batch_subcommand_parses_its_options() {
        let options = parse_args(&args(&[
            "batch",
            "--samples",
            "40",
            "--requests",
            "4",
            "--queue",
            "2",
            "--jobs",
            "3",
            "a.cnf",
        ]))
        .unwrap();
        assert!(options.batch);
        assert_eq!(options.samples, 40);
        assert_eq!(options.requests, 4);
        assert_eq!(options.queue, 2);
        assert_eq!(options.jobs, Some(3));
        // Batch-only options are rejected on the legacy path, and zero
        // requests/queue are rejected outright.
        assert!(!parse_args(&args(&["a.cnf"])).unwrap().batch);
        assert!(parse_args(&args(&["--requests", "4", "a.cnf"])).is_err());
        assert!(parse_args(&args(&["--queue", "2", "a.cnf"])).is_err());
        assert!(parse_args(&args(&["batch", "--requests", "0", "a.cnf"])).is_err());
        assert!(parse_args(&args(&["batch", "--queue", "0", "a.cnf"])).is_err());
    }

    #[test]
    fn certify_and_proof_dump_parse_and_constrain() {
        let options = parse_args(&args(&["--certify", "a.cnf"])).unwrap();
        assert!(options.certify);
        assert!(options.proof_dump.is_none());
        // --proof-dump implies --certify.
        let options = parse_args(&args(&["--proof-dump", "p.bin", "a.cnf"])).unwrap();
        assert!(options.certify);
        assert_eq!(options.proof_dump.as_deref(), Some("p.bin"));
        // The dump needs the serial path: worker clones fork the stream.
        assert!(parse_args(&args(&["--proof-dump", "p.bin", "--jobs", "2", "a.cnf"])).is_err());
        assert!(parse_args(&args(&["batch", "--proof-dump", "p.bin", "a.cnf"])).is_err());
        assert!(parse_args(&args(&["--proof-dump"])).is_err());
        // Plain --certify composes with both parallel paths.
        assert!(parse_args(&args(&["--certify", "--jobs", "2", "a.cnf"])).is_ok());
        assert!(parse_args(&args(&["batch", "--certify", "a.cnf"])).is_ok());
    }

    #[test]
    fn rejects_missing_file_and_unknown_options() {
        assert!(parse_args(&args(&[])).is_err());
        assert!(parse_args(&args(&["--bogus", "x.cnf"])).is_err());
        assert!(parse_args(&args(&["a.cnf", "b.cnf"])).is_err());
        assert!(parse_args(&args(&["--samples", "nope", "a.cnf"])).is_err());
    }

    #[test]
    fn end_to_end_on_a_temporary_file() {
        let dir = std::env::temp_dir();
        let path = dir.join("unigen_cli_smoke.cnf");
        std::fs::write(&path, "c ind 1 2 0\np cnf 3 2\n1 2 0\nx 1 3 0\n").unwrap();
        let options = CliOptions {
            file: path.to_string_lossy().into_owned(),
            samples: 3,
            epsilon: 6.0,
            seed: 7,
            timeout: None,
            jobs: None,
            certify: false,
            proof_dump: None,
            verbose: true,
            batch: false,
            requests: 1,
            queue: 16,
        };
        run(&options).unwrap();
        // Certified serial run with a proof dump, re-checked offline.
        let dump = dir.join("unigen_cli_smoke.proof");
        let certified = CliOptions {
            certify: true,
            proof_dump: Some(dump.to_string_lossy().into_owned()),
            ..options.clone()
        };
        run(&certified).unwrap();
        let formula = dimacs::parse_file(&certified.file).unwrap();
        let bytes = std::fs::read(&dump).unwrap();
        assert!(!bytes.is_empty());
        unigen_cert::Checker::check(&unigen::cert_formula(&formula), &bytes).unwrap();
        let _ = std::fs::remove_file(&dump);
        // The deprecated parallel flag path on the same file.
        let options = CliOptions {
            jobs: Some(2),
            ..options
        };
        run(&options).unwrap();
        // The service-backed batch subcommand path, multiple requests.
        let options = CliOptions {
            batch: true,
            samples: 5,
            requests: 2,
            queue: 1,
            ..options
        };
        run(&options).unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
