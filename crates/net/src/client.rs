//! Blocking client for the sampler daemon.
//!
//! [`Client`] owns one connection (TCP or unix) and demultiplexes the
//! server's interleaved response streams: several requests can be in
//! flight at once (that is how `unigen_cli client --cancel-demo`
//! cancels one request while another streams), and frames for other
//! requests are routed to their pending accumulators while the caller
//! waits on a specific id.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::server::default_spec;
use crate::wire::{
    self, Decoder, ErrorCode, FormulaRef, Frame, FrameError, WireHealth, WireOutcomeKind, WireSpec,
    WireStats, PROTOCOL_VERSION,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server sent bytes our decoder rejected.
    Frame(FrameError),
    /// The server answered with a typed error frame.
    Rejected {
        /// Request id the error was scoped to (0 = connection-level).
        id: u64,
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail from the server.
        detail: String,
    },
    /// The server violated the protocol (unexpected frame).
    Protocol(String),
    /// The server closed the connection mid-conversation.
    ServerClosed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "socket error: {err}"),
            ClientError::Frame(err) => write!(f, "bad frame from server: {err}"),
            ClientError::Rejected { id, code, detail } => {
                write!(
                    f,
                    "server rejected request {id} ({}): {detail}",
                    code.name()
                )
            }
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> ClientError {
        ClientError::Io(err)
    }
}

impl From<FrameError> for ClientError {
    fn from(err: FrameError) -> ClientError {
        ClientError::Frame(err)
    }
}

/// One sampling request to send over the wire.
#[derive(Debug, Clone)]
pub struct ClientRequest {
    /// Inline DIMACS or a fingerprint from an earlier `StreamBegin`.
    pub formula: FormulaRef,
    /// Sampler family + knobs (defaults to the UniGen default spec).
    pub spec: WireSpec,
    /// Number of witnesses to request.
    pub count: u64,
    /// Master seed for the deterministic batch.
    pub master_seed: u64,
    /// Per-item budget in microseconds (0 = unbounded).
    pub budget_micros: u64,
}

impl ClientRequest {
    /// Request against inline DIMACS text with the default spec.
    pub fn inline(dimacs: &str, count: u64, master_seed: u64) -> ClientRequest {
        ClientRequest {
            formula: FormulaRef::Inline(dimacs.as_bytes().to_vec()),
            spec: default_spec(),
            count,
            master_seed,
            budget_micros: 0,
        }
    }

    /// Request against a formula already prepared in the server's
    /// registry.
    pub fn by_fingerprint(fingerprint: u64, count: u64, master_seed: u64) -> ClientRequest {
        ClientRequest {
            formula: FormulaRef::Fingerprint(fingerprint),
            spec: default_spec(),
            count,
            master_seed,
            budget_micros: 0,
        }
    }

    /// Replace the sampler spec.
    pub fn with_spec(mut self, spec: WireSpec) -> ClientRequest {
        self.spec = spec;
        self
    }

    /// Set the per-item budget in microseconds.
    pub fn with_budget_micros(mut self, budget_micros: u64) -> ClientRequest {
        self.budget_micros = budget_micros;
        self
    }
}

/// One streamed outcome, decoded client-side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireOutcome {
    /// Witness index within the batch.
    pub index: u64,
    /// Outcome kind.
    pub kind: WireOutcomeKind,
    /// Projected witness values (sampling-set order) for `Witness`
    /// outcomes.
    pub witness: Option<Vec<bool>>,
}

/// A completed batch response.
#[derive(Debug, Clone)]
pub struct WireBatch {
    /// Fingerprint of the prepared formula+spec (reusable via
    /// [`ClientRequest::by_fingerprint`]).
    pub fingerprint: u64,
    /// Sampling set as 0-based variable indices, in projection order.
    pub sampling_set: Vec<u32>,
    /// All outcomes, in index order.
    pub outcomes: Vec<WireOutcome>,
    /// Number of witness outcomes.
    pub successes: u64,
    /// Aggregate statistics from the server.
    pub stats: WireStats,
}

#[derive(Default)]
struct Pending {
    fingerprint: u64,
    sampling_set: Vec<u32>,
    begun: bool,
    outcomes: Vec<WireOutcome>,
    finished: Option<Result<(u64, WireStats), (ErrorCode, String)>>,
}

enum Stream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.write_all(buf),
            Stream::Unix(s) => s.write_all(buf),
        }
    }
}

/// A blocking connection to the sampler daemon.
pub struct Client {
    stream: Stream,
    decoder: Decoder,
    next_id: u64,
    pending: HashMap<u64, Pending>,
    health_frames: VecDeque<WireHealth>,
}

impl Client {
    /// Connect over TCP and perform the hello handshake.
    pub fn connect_tcp(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Client::handshake(Stream::Tcp(stream))
    }

    /// Connect over a unix-domain socket and perform the handshake.
    pub fn connect_unix(path: &Path) -> Result<Client, ClientError> {
        let stream = UnixStream::connect(path)?;
        Client::handshake(Stream::Unix(stream))
    }

    fn handshake(stream: Stream) -> Result<Client, ClientError> {
        let mut client = Client {
            stream,
            decoder: Decoder::new(),
            next_id: 1,
            pending: HashMap::new(),
            health_frames: VecDeque::new(),
        };
        client.send_raw(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )?;
        match client.read_frame()? {
            Frame::HelloAck { version } if version == PROTOCOL_VERSION => Ok(client),
            Frame::HelloAck { version } => Err(ClientError::Protocol(format!(
                "server acknowledged protocol {version}, expected {PROTOCOL_VERSION}"
            ))),
            Frame::Error { id, code, detail } => Err(ClientError::Rejected { id, code, detail }),
            other => Err(ClientError::Protocol(format!(
                "expected HelloAck, got {other:?}"
            ))),
        }
    }

    fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        Ok(())
    }

    fn read_frame(&mut self) -> Result<Frame, ClientError> {
        loop {
            if let Some(frame) = self.decoder.next_frame()? {
                return Ok(frame);
            }
            let mut scratch = [0u8; 16 * 1024];
            let n = self.stream.read(&mut scratch)?;
            if n == 0 {
                return Err(ClientError::ServerClosed);
            }
            self.decoder.feed(&scratch[..n]);
        }
    }

    /// Send a request and return its wire id without waiting for the
    /// response (pair with [`Client::collect`]).
    pub fn submit(&mut self, request: &ClientRequest) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        self.pending.insert(id, Pending::default());
        let frame = Frame::Request {
            id,
            formula: request.formula.clone(),
            spec: request.spec,
            count: request.count,
            master_seed: request.master_seed,
            budget_micros: request.budget_micros,
        };
        self.send_raw(&frame.encode())?;
        Ok(id)
    }

    /// Ask the server to cancel an in-flight request. The stream still
    /// terminates (with a `Cancelled` error or, if the race was lost,
    /// a normal `Done`), so follow with [`Client::collect`].
    pub fn cancel(&mut self, id: u64) -> Result<(), ClientError> {
        self.send_raw(&Frame::Cancel { id }.encode())
    }

    /// Block until request `id` finishes and return its batch.
    ///
    /// A typed server error for `id` (including `Cancelled`) surfaces
    /// as [`ClientError::Rejected`]; the partial outcomes received
    /// before the error are discarded with the pending entry.
    pub fn collect(&mut self, id: u64) -> Result<WireBatch, ClientError> {
        loop {
            match self.pending.get(&id) {
                None => {
                    return Err(ClientError::Protocol(format!(
                        "request {id} was never submitted (or already collected)"
                    )))
                }
                Some(pending) if pending.finished.is_some() => break,
                Some(_) => {
                    let frame = self.read_frame()?;
                    self.route(frame)?;
                }
            }
        }
        let pending = match self.pending.remove(&id) {
            Some(pending) => pending,
            None => return Err(ClientError::Protocol("pending entry vanished".to_owned())),
        };
        match pending.finished {
            Some(Ok((successes, stats))) => Ok(WireBatch {
                fingerprint: pending.fingerprint,
                sampling_set: pending.sampling_set,
                outcomes: pending.outcomes,
                successes,
                stats,
            }),
            Some(Err((code, detail))) => Err(ClientError::Rejected { id, code, detail }),
            None => Err(ClientError::Protocol("unfinished batch".to_owned())),
        }
    }

    /// Submit and collect in one call.
    pub fn sample(&mut self, request: &ClientRequest) -> Result<WireBatch, ClientError> {
        let id = self.submit(request)?;
        self.collect(id)
    }

    /// Request a service-health snapshot.
    pub fn health(&mut self) -> Result<WireHealth, ClientError> {
        self.send_raw(&Frame::HealthReq.encode())?;
        loop {
            if let Some(health) = self.health_frames.pop_front() {
                return Ok(health);
            }
            let frame = self.read_frame()?;
            self.route(frame)?;
        }
    }

    /// Ask the daemon to exit (requires `serve --allow-shutdown`).
    /// Returns once the server closes the connection.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.send_raw(&Frame::Shutdown.encode())?;
        loop {
            match self.read_frame() {
                Ok(Frame::Error { id, code, detail }) => {
                    return Err(ClientError::Rejected { id, code, detail })
                }
                Ok(frame) => {
                    // Tail frames of in-flight streams may still arrive.
                    self.route(frame)?;
                }
                Err(ClientError::ServerClosed) => return Ok(()),
                Err(err) => return Err(err),
            }
        }
    }

    fn route(&mut self, frame: Frame) -> Result<(), ClientError> {
        match frame {
            Frame::StreamBegin {
                id,
                fingerprint,
                sampling_set,
            } => {
                if let Some(pending) = self.pending.get_mut(&id) {
                    pending.fingerprint = fingerprint;
                    pending.sampling_set = sampling_set;
                    pending.begun = true;
                }
                Ok(())
            }
            Frame::Chunk {
                id,
                index,
                kind,
                bits,
            } => {
                let pending = match self.pending.get_mut(&id) {
                    Some(pending) => pending,
                    None => return Ok(()),
                };
                let witness = if kind == WireOutcomeKind::Witness {
                    match wire::unpack_bits(&bits, pending.sampling_set.len()) {
                        Some(values) => Some(values),
                        None => {
                            return Err(ClientError::Protocol(format!(
                                "chunk {index} of request {id} has a corrupt bit payload"
                            )))
                        }
                    }
                } else {
                    None
                };
                pending.outcomes.push(WireOutcome {
                    index,
                    kind,
                    witness,
                });
                Ok(())
            }
            Frame::Done {
                id,
                successes,
                stats,
            } => {
                if let Some(pending) = self.pending.get_mut(&id) {
                    pending.finished = Some(Ok((successes, stats)));
                }
                Ok(())
            }
            Frame::Error {
                id: 0,
                code,
                detail,
            } => Err(ClientError::Rejected {
                id: 0,
                code,
                detail,
            }),
            Frame::Error { id, code, detail } => {
                if let Some(pending) = self.pending.get_mut(&id) {
                    pending.finished = Some(Err((code, detail)));
                }
                Ok(())
            }
            Frame::Health(health) => {
                self.health_frames.push_back(health);
                Ok(())
            }
            other => Err(ClientError::Protocol(format!(
                "unexpected frame from server: {other:?}"
            ))),
        }
    }
}
