//! Versioned, length-prefixed binary wire protocol for the sampler daemon.
//!
//! # Frame layout
//!
//! Every frame on the wire is:
//!
//! ```text
//! +----------------------+---------------------------+
//! | LEB128 payload length | payload (tag + body)     |
//! +----------------------+---------------------------+
//! ```
//!
//! The length prefix is an unsigned LEB128 varint counting the payload
//! bytes (tag byte included). Payloads begin with a one-byte frame tag
//! followed by a tag-specific body. Multi-byte scalar fields are either
//! unsigned LEB128 varints (lengths, counts, ids, statistics) or 8-byte
//! little-endian words (seeds, fingerprints, `f64::to_bits`). A frame
//! whose declared payload length exceeds [`MAX_FRAME_LEN`] is rejected
//! *before* the decoder waits for its body, so a hostile length prefix
//! can never force an allocation or an over-read.
//!
//! Body layouts (all after the tag byte):
//!
//! | tag | frame         | body |
//! |-----|---------------|------|
//! | 1   | `Hello`       | magic `b"UGNW"`, varint protocol version |
//! | 2   | `HelloAck`    | varint protocol version |
//! | 3   | `Request`     | varint id, u8 formula-ref kind (0 = inline: varint len + DIMACS bytes; 1 = 8-byte LE fingerprint), u8 family, u8 epsilon flag (+ 8-byte LE `f64::to_bits` when 1), 8-byte LE prepare seed, varint count, 8-byte LE master seed, varint budget in microseconds (0 = unbounded) |
//! | 4   | `Cancel`      | varint id |
//! | 5   | `HealthReq`   | empty |
//! | 6   | `StreamBegin` | varint id, 8-byte LE fingerprint, varint set size, that many varint variable indices |
//! | 7   | `Chunk`       | varint id, varint witness index, u8 outcome kind, varint byte count + packed witness bits (LSB-first over the sampling set; empty unless the outcome is a witness) |
//! | 8   | `Done`        | varint id, varint successes, 7 varints of [`WireStats`] |
//! | 9   | `Error`       | varint id (0 = connection-level), u8 [`ErrorCode`], varint len + UTF-8 detail |
//! | 10  | `Health`      | 10 varints of [`WireHealth`] |
//! | 11  | `Shutdown`    | empty |
//!
//! # Versioning
//!
//! A connection opens with `Hello{version}`; the server answers
//! `HelloAck{version}` on a match and a typed
//! [`ErrorCode::UnsupportedVersion`] error frame (then closes) otherwise.
//! Any layout change bumps [`PROTOCOL_VERSION`]; the golden-vector test
//! in `tests/golden_frames.rs` pins every frame byte-for-byte so an
//! accidental wire break fails CI.
//!
//! # Determinism contract
//!
//! For a fixed `(formula, spec, count, master_seed)` the chunk sequence a
//! client receives is **bit-identical** to the in-process
//! `WitnessSampler::sample_batch` reference: same witness at every index,
//! same outcome kinds, streamed in index order. This holds per request,
//! across TCP and unix transports, and regardless of how many other
//! clients share the pool. *Inter*-client frame ordering is not part of
//! the contract: the server round-robins the drain across connections, so
//! two concurrent requests interleave arbitrarily on the shared pool.

use std::fmt;

/// Connection magic carried in the `Hello` frame.
pub const MAGIC: [u8; 4] = *b"UGNW";

/// Current protocol version, negotiated by `Hello`/`HelloAck`.
pub const PROTOCOL_VERSION: u64 = 1;

/// Upper bound on a single frame's payload length (64 MiB).
///
/// The decoder rejects a length prefix above this before buffering any
/// payload bytes, bounding memory per connection.
pub const MAX_FRAME_LEN: u64 = 1 << 26;

/// Frame tag bytes (first payload byte of every frame).
pub mod tag {
    /// Client hello (magic + version).
    pub const HELLO: u8 = 1;
    /// Server hello acknowledgement.
    pub const HELLO_ACK: u8 = 2;
    /// Sampling request.
    pub const REQUEST: u8 = 3;
    /// Cancel an in-flight request.
    pub const CANCEL: u8 = 4;
    /// Health probe.
    pub const HEALTH_REQ: u8 = 5;
    /// Response stream header.
    pub const STREAM_BEGIN: u8 = 6;
    /// One streamed outcome.
    pub const CHUNK: u8 = 7;
    /// Response stream trailer.
    pub const DONE: u8 = 8;
    /// Typed error.
    pub const ERROR: u8 = 9;
    /// Health snapshot.
    pub const HEALTH: u8 = 10;
    /// Daemon shutdown (honored only under `serve --allow-shutdown`).
    pub const SHUTDOWN: u8 = 11;
}

/// Typed decode failure. The decoder returns these instead of panicking
/// or over-reading, whatever bytes arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Declared payload length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// The declared payload length.
        len: u64,
    },
    /// The length prefix itself is not a valid LEB128 varint.
    BadLengthPrefix,
    /// Unknown frame tag byte.
    UnknownTag {
        /// The offending tag byte.
        tag: u8,
    },
    /// Payload ended before the fields the tag requires.
    Truncated {
        /// Tag of the frame being decoded.
        tag: u8,
    },
    /// Payload has bytes left over after all fields were read.
    Trailing {
        /// Tag of the frame being decoded.
        tag: u8,
        /// Number of unconsumed payload bytes.
        extra: usize,
    },
    /// `Hello` carried the wrong connection magic.
    BadMagic,
    /// A string field is not valid UTF-8.
    BadUtf8,
    /// A field holds an out-of-range or inconsistent value.
    BadValue {
        /// Which field was malformed.
        context: &'static str,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "frame payload length {len} exceeds {MAX_FRAME_LEN}")
            }
            FrameError::BadLengthPrefix => write!(f, "malformed LEB128 length prefix"),
            FrameError::UnknownTag { tag } => write!(f, "unknown frame tag {tag}"),
            FrameError::Truncated { tag } => write!(f, "truncated payload for frame tag {tag}"),
            FrameError::Trailing { tag, extra } => {
                write!(f, "{extra} trailing bytes after frame tag {tag}")
            }
            FrameError::BadMagic => write!(f, "bad connection magic (expected \"UGNW\")"),
            FrameError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            FrameError::BadValue { context } => write!(f, "bad value for {context}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Sampler family selector carried in a request (mirrors
/// `unigen::SamplerSpec` without dragging config types over the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// UniGen (Algorithm 1 of the paper).
    UniGen,
    /// UniWit baseline.
    UniWit,
    /// XorSample' baseline.
    XorSamplePrime,
    /// Ideal uniform sampler (enumeration-backed).
    Uniform,
}

impl Family {
    /// Wire byte for this family.
    pub fn as_u8(self) -> u8 {
        match self {
            Family::UniGen => 0,
            Family::UniWit => 1,
            Family::XorSamplePrime => 2,
            Family::Uniform => 3,
        }
    }

    /// Decode a wire byte; `None` for unknown values.
    pub fn from_u8(byte: u8) -> Option<Family> {
        match byte {
            0 => Some(Family::UniGen),
            1 => Some(Family::UniWit),
            2 => Some(Family::XorSamplePrime),
            3 => Some(Family::Uniform),
            _ => None,
        }
    }
}

/// Outcome kind of a streamed chunk (mirrors `unigen::OutcomeKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOutcomeKind {
    /// A sampled witness; the chunk carries packed projection bits.
    Witness,
    /// The sampler returned bottom (gave up within its budget).
    Bottom,
    /// The per-item budget interrupted the solve.
    Interrupted,
    /// An injected or real fault consumed the item.
    Faulted,
}

impl WireOutcomeKind {
    /// Wire byte for this outcome kind.
    pub fn as_u8(self) -> u8 {
        match self {
            WireOutcomeKind::Witness => 0,
            WireOutcomeKind::Bottom => 1,
            WireOutcomeKind::Interrupted => 2,
            WireOutcomeKind::Faulted => 3,
        }
    }

    /// Decode a wire byte; `None` for unknown values.
    pub fn from_u8(byte: u8) -> Option<WireOutcomeKind> {
        match byte {
            0 => Some(WireOutcomeKind::Witness),
            1 => Some(WireOutcomeKind::Bottom),
            2 => Some(WireOutcomeKind::Interrupted),
            3 => Some(WireOutcomeKind::Faulted),
            _ => None,
        }
    }
}

/// Typed error codes carried by [`Frame::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The peer sent bytes the decoder rejected ([`FrameError`] detail).
    Malformed,
    /// Protocol version mismatch in the hello handshake.
    UnsupportedVersion,
    /// The service queue stayed full through the bounded retry budget.
    Busy,
    /// Fingerprint-referenced formula is not in the registry.
    UnknownFingerprint,
    /// Building the sampler failed (parse error, bad config, ...).
    PrepareFailed,
    /// The formula is unsatisfiable.
    Unsat,
    /// The request was cancelled by a `Cancel` frame or disconnect.
    Cancelled,
    /// The prepared-formula registry is at capacity.
    RegistryFull,
    /// The request combines options the chosen family rejects.
    Unsupported,
    /// `Shutdown` received but the daemon was not started with
    /// `--allow-shutdown`.
    ShutdownDisabled,
}

impl ErrorCode {
    /// Wire byte for this error code.
    pub fn as_u8(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::UnsupportedVersion => 2,
            ErrorCode::Busy => 3,
            ErrorCode::UnknownFingerprint => 4,
            ErrorCode::PrepareFailed => 5,
            ErrorCode::Unsat => 6,
            ErrorCode::Cancelled => 7,
            ErrorCode::RegistryFull => 8,
            ErrorCode::Unsupported => 9,
            ErrorCode::ShutdownDisabled => 10,
        }
    }

    /// Decode a wire byte; `None` for unknown values.
    pub fn from_u8(byte: u8) -> Option<ErrorCode> {
        match byte {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::UnsupportedVersion),
            3 => Some(ErrorCode::Busy),
            4 => Some(ErrorCode::UnknownFingerprint),
            5 => Some(ErrorCode::PrepareFailed),
            6 => Some(ErrorCode::Unsat),
            7 => Some(ErrorCode::Cancelled),
            8 => Some(ErrorCode::RegistryFull),
            9 => Some(ErrorCode::Unsupported),
            10 => Some(ErrorCode::ShutdownDisabled),
            _ => None,
        }
    }

    /// Short stable name for logs and CLI output.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::UnsupportedVersion => "unsupported-version",
            ErrorCode::Busy => "busy",
            ErrorCode::UnknownFingerprint => "unknown-fingerprint",
            ErrorCode::PrepareFailed => "prepare-failed",
            ErrorCode::Unsat => "unsat",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::RegistryFull => "registry-full",
            ErrorCode::Unsupported => "unsupported",
            ErrorCode::ShutdownDisabled => "shutdown-disabled",
        }
    }
}

/// How a request names its formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormulaRef {
    /// Inline DIMACS text (UTF-8 bytes, parsed server-side).
    Inline(Vec<u8>),
    /// Fingerprint of a formula+spec already prepared in the registry
    /// (returned by a previous `StreamBegin`). The spec fields of a
    /// fingerprint request are ignored: the fingerprint already commits
    /// to a prepared spec.
    Fingerprint(u64),
}

/// `SamplerSpec`-shaped configuration carried in a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireSpec {
    /// Which sampler family to build.
    pub family: Family,
    /// `f64::to_bits` of the tolerance ε, or `None` for the family
    /// default. Families without an ε knob reject `Some` with a typed
    /// [`ErrorCode::Unsupported`] error.
    pub epsilon_bits: Option<u64>,
    /// Seed for the prepare phase (hash-family draw, pivot scan).
    pub prepare_seed: u64,
}

/// Per-request aggregate statistics carried by [`Frame::Done`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Total BSAT (bounded-SAT enumeration) calls.
    pub bsat_calls: u64,
    /// Work-stealing steals while the request ran.
    pub steals: u64,
    /// Degradation-ladder retries.
    pub retries: u64,
    /// Degradation rungs taken.
    pub degradations: u64,
    /// Faults injected by the fault plan.
    pub faults_injected: u64,
    /// Microseconds items spent queued before a worker picked them up.
    pub queue_wait_micros: u64,
    /// Sampler wall-clock microseconds summed over the batch's items.
    pub wall_micros: u64,
}

/// Service-wide health snapshot carried by [`Frame::Health`]
/// (aggregates `unigen::ServiceHealth` across every registry service).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireHealth {
    /// Prepared sampler services currently in the registry.
    pub services: u64,
    /// Sum of configured workers across services.
    pub configured_workers: u64,
    /// Sum of currently-alive workers.
    pub alive_workers: u64,
    /// Total worker panics absorbed.
    pub worker_panics: u64,
    /// Total workers respawned after panics.
    pub respawns: u64,
    /// Total item retries after worker deaths.
    pub item_retries: u64,
    /// Total faults injected by fault plans.
    pub faults_injected: u64,
    /// Requests currently occupying queue slots.
    pub pending_requests: u64,
    /// Items currently queued or running.
    pub queued_items: u64,
    /// Open client connections.
    pub connections: u64,
}

/// One decoded protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client hello: connection magic + protocol version.
    Hello {
        /// Protocol version the client speaks.
        version: u64,
    },
    /// Server acknowledgement of a compatible hello.
    HelloAck {
        /// Protocol version the server speaks.
        version: u64,
    },
    /// Sampling request.
    Request {
        /// Client-chosen request id (nonzero, unique per connection).
        id: u64,
        /// Inline DIMACS or registry fingerprint.
        formula: FormulaRef,
        /// Sampler family + knobs.
        spec: WireSpec,
        /// Number of witnesses requested.
        count: u64,
        /// Master seed for the deterministic per-index streams.
        master_seed: u64,
        /// Per-item budget in microseconds; 0 means unbounded.
        budget_micros: u64,
    },
    /// Cancel an in-flight request on this connection.
    Cancel {
        /// Id of the request to cancel.
        id: u64,
    },
    /// Ask for a health snapshot.
    HealthReq,
    /// Response stream header: echoes the prepared formula identity.
    StreamBegin {
        /// Request id this stream answers.
        id: u64,
        /// Fingerprint of the prepared formula+spec (usable as a
        /// [`FormulaRef::Fingerprint`] in later requests).
        fingerprint: u64,
        /// Projected sampling set, as 0-based variable indices. Chunk
        /// bit payloads are packed in exactly this order.
        sampling_set: Vec<u32>,
    },
    /// One streamed outcome, delivered in witness-index order.
    Chunk {
        /// Request id.
        id: u64,
        /// Witness index within the batch (0-based, strictly
        /// increasing).
        index: u64,
        /// What the sampler produced at this index.
        kind: WireOutcomeKind,
        /// Packed projection bits, LSB-first over `sampling_set`
        /// (empty unless `kind` is `Witness`).
        bits: Vec<u8>,
    },
    /// Response stream trailer with aggregate statistics.
    Done {
        /// Request id.
        id: u64,
        /// Number of witness outcomes in the batch.
        successes: u64,
        /// Aggregate statistics for the request.
        stats: WireStats,
    },
    /// Typed error, request-scoped (`id != 0`) or connection-scoped
    /// (`id == 0`).
    Error {
        /// Offending request id, or 0 for connection-level errors.
        id: u64,
        /// Machine-readable error class.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// Health snapshot.
    Health(WireHealth),
    /// Ask the daemon to exit (requires `serve --allow-shutdown`).
    Shutdown,
}

// ---------------------------------------------------------------------------
// LEB128
// ---------------------------------------------------------------------------

/// Append `value` as an unsigned LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A malformed LEB128 varint: more than 10 bytes, or set bits beyond the
/// 64th.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarintError;

/// Decode an unsigned LEB128 varint from the front of `bytes`.
///
/// Returns `Ok(Some((value, consumed)))` on success, `Ok(None)` when more
/// bytes are needed, and [`VarintError`] when the encoding is malformed.
pub fn get_varint(bytes: &[u8]) -> Result<Option<(u64, usize)>, VarintError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    for (i, &byte) in bytes.iter().enumerate() {
        if i >= 10 {
            return Err(VarintError);
        }
        let low = u64::from(byte & 0x7f);
        if shift == 63 && low > 1 {
            return Err(VarintError);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(Some((value, i + 1)));
        }
        shift += 7;
    }
    if bytes.len() >= 10 {
        return Err(VarintError);
    }
    Ok(None)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u64_le(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

impl Frame {
    /// Encode this frame, length prefix included.
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 3);
        put_varint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    fn encode_payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Hello { version } => {
                p.push(tag::HELLO);
                p.extend_from_slice(&MAGIC);
                put_varint(&mut p, *version);
            }
            Frame::HelloAck { version } => {
                p.push(tag::HELLO_ACK);
                put_varint(&mut p, *version);
            }
            Frame::Request {
                id,
                formula,
                spec,
                count,
                master_seed,
                budget_micros,
            } => {
                p.push(tag::REQUEST);
                put_varint(&mut p, *id);
                match formula {
                    FormulaRef::Inline(dimacs) => {
                        p.push(0);
                        put_varint(&mut p, dimacs.len() as u64);
                        p.extend_from_slice(dimacs);
                    }
                    FormulaRef::Fingerprint(fp) => {
                        p.push(1);
                        put_u64_le(&mut p, *fp);
                    }
                }
                p.push(spec.family.as_u8());
                match spec.epsilon_bits {
                    Some(bits) => {
                        p.push(1);
                        put_u64_le(&mut p, bits);
                    }
                    None => p.push(0),
                }
                put_u64_le(&mut p, spec.prepare_seed);
                put_varint(&mut p, *count);
                put_u64_le(&mut p, *master_seed);
                put_varint(&mut p, *budget_micros);
            }
            Frame::Cancel { id } => {
                p.push(tag::CANCEL);
                put_varint(&mut p, *id);
            }
            Frame::HealthReq => p.push(tag::HEALTH_REQ),
            Frame::StreamBegin {
                id,
                fingerprint,
                sampling_set,
            } => {
                p.push(tag::STREAM_BEGIN);
                put_varint(&mut p, *id);
                put_u64_le(&mut p, *fingerprint);
                put_varint(&mut p, sampling_set.len() as u64);
                for &var in sampling_set {
                    put_varint(&mut p, u64::from(var));
                }
            }
            Frame::Chunk {
                id,
                index,
                kind,
                bits,
            } => {
                p.push(tag::CHUNK);
                put_varint(&mut p, *id);
                put_varint(&mut p, *index);
                p.push(kind.as_u8());
                put_varint(&mut p, bits.len() as u64);
                p.extend_from_slice(bits);
            }
            Frame::Done {
                id,
                successes,
                stats,
            } => {
                p.push(tag::DONE);
                put_varint(&mut p, *id);
                put_varint(&mut p, *successes);
                for field in [
                    stats.bsat_calls,
                    stats.steals,
                    stats.retries,
                    stats.degradations,
                    stats.faults_injected,
                    stats.queue_wait_micros,
                    stats.wall_micros,
                ] {
                    put_varint(&mut p, field);
                }
            }
            Frame::Error { id, code, detail } => {
                p.push(tag::ERROR);
                put_varint(&mut p, *id);
                p.push(code.as_u8());
                put_varint(&mut p, detail.len() as u64);
                p.extend_from_slice(detail.as_bytes());
            }
            Frame::Health(h) => {
                p.push(tag::HEALTH);
                for field in [
                    h.services,
                    h.configured_workers,
                    h.alive_workers,
                    h.worker_panics,
                    h.respawns,
                    h.item_retries,
                    h.faults_injected,
                    h.pending_requests,
                    h.queued_items,
                    h.connections,
                ] {
                    put_varint(&mut p, field);
                }
            }
            Frame::Shutdown => p.push(tag::SHUTDOWN),
        }
        p
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Cursor over one frame payload; every read is bounds-checked so a
/// truncated body surfaces as [`FrameError::Truncated`], never a slice
/// panic.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    tag: u8,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8], tag: u8) -> Self {
        Reader { bytes, pos: 0, tag }
    }

    fn truncated(&self) -> FrameError {
        FrameError::Truncated { tag: self.tag }
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        let byte = *self.bytes.get(self.pos).ok_or_else(|| self.truncated())?;
        self.pos += 1;
        Ok(byte)
    }

    fn u64_le(&mut self) -> Result<u64, FrameError> {
        let end = self.pos.checked_add(8).ok_or_else(|| self.truncated())?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        let mut word = [0u8; 8];
        word.copy_from_slice(slice);
        self.pos = end;
        Ok(u64::from_le_bytes(word))
    }

    fn varint(&mut self) -> Result<u64, FrameError> {
        match get_varint(&self.bytes[self.pos..]) {
            Ok(Some((value, used))) => {
                self.pos += used;
                Ok(value)
            }
            Ok(None) => Err(self.truncated()),
            Err(VarintError) => Err(FrameError::BadValue { context: "varint" }),
        }
    }

    fn bytes(&mut self, len: u64) -> Result<&'a [u8], FrameError> {
        let len = usize::try_from(len).map_err(|_| self.truncated())?;
        let end = self.pos.checked_add(len).ok_or_else(|| self.truncated())?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.truncated())?;
        self.pos = end;
        Ok(slice)
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos != self.bytes.len() {
            return Err(FrameError::Trailing {
                tag: self.tag,
                extra: self.bytes.len() - self.pos,
            });
        }
        Ok(())
    }
}

/// Decode one payload (tag + body) into a [`Frame`].
pub fn decode_payload(payload: &[u8]) -> Result<Frame, FrameError> {
    let (&tag_byte, body) = payload.split_first().ok_or(FrameError::BadValue {
        context: "empty payload",
    })?;
    let mut r = Reader::new(body, tag_byte);
    let frame = match tag_byte {
        tag::HELLO => {
            let magic = r
                .bytes(4)
                .map_err(|_| FrameError::Truncated { tag: tag_byte })?;
            if magic != MAGIC {
                return Err(FrameError::BadMagic);
            }
            Frame::Hello {
                version: r.varint()?,
            }
        }
        tag::HELLO_ACK => Frame::HelloAck {
            version: r.varint()?,
        },
        tag::REQUEST => {
            let id = r.varint()?;
            if id == 0 {
                return Err(FrameError::BadValue {
                    context: "request id 0",
                });
            }
            let formula = match r.u8()? {
                0 => {
                    let len = r.varint()?;
                    FormulaRef::Inline(r.bytes(len)?.to_vec())
                }
                1 => FormulaRef::Fingerprint(r.u64_le()?),
                _ => {
                    return Err(FrameError::BadValue {
                        context: "formula ref kind",
                    })
                }
            };
            let family = Family::from_u8(r.u8()?).ok_or(FrameError::BadValue {
                context: "sampler family",
            })?;
            let epsilon_bits = match r.u8()? {
                0 => None,
                1 => Some(r.u64_le()?),
                _ => {
                    return Err(FrameError::BadValue {
                        context: "epsilon flag",
                    })
                }
            };
            let prepare_seed = r.u64_le()?;
            let count = r.varint()?;
            let master_seed = r.u64_le()?;
            let budget_micros = r.varint()?;
            Frame::Request {
                id,
                formula,
                spec: WireSpec {
                    family,
                    epsilon_bits,
                    prepare_seed,
                },
                count,
                master_seed,
                budget_micros,
            }
        }
        tag::CANCEL => Frame::Cancel { id: r.varint()? },
        tag::HEALTH_REQ => Frame::HealthReq,
        tag::STREAM_BEGIN => {
            let id = r.varint()?;
            let fingerprint = r.u64_le()?;
            let n = r.varint()?;
            // Each set entry costs at least one byte, so `n` can never
            // exceed the remaining payload; reject before allocating.
            if n > (body.len() as u64) {
                return Err(FrameError::Truncated { tag: tag_byte });
            }
            let mut sampling_set = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let var = r.varint()?;
                let var = u32::try_from(var).map_err(|_| FrameError::BadValue {
                    context: "sampling set var",
                })?;
                sampling_set.push(var);
            }
            Frame::StreamBegin {
                id,
                fingerprint,
                sampling_set,
            }
        }
        tag::CHUNK => {
            let id = r.varint()?;
            let index = r.varint()?;
            let kind = WireOutcomeKind::from_u8(r.u8()?).ok_or(FrameError::BadValue {
                context: "outcome kind",
            })?;
            let len = r.varint()?;
            let bits = r.bytes(len)?.to_vec();
            Frame::Chunk {
                id,
                index,
                kind,
                bits,
            }
        }
        tag::DONE => {
            let id = r.varint()?;
            let successes = r.varint()?;
            let stats = WireStats {
                bsat_calls: r.varint()?,
                steals: r.varint()?,
                retries: r.varint()?,
                degradations: r.varint()?,
                faults_injected: r.varint()?,
                queue_wait_micros: r.varint()?,
                wall_micros: r.varint()?,
            };
            Frame::Done {
                id,
                successes,
                stats,
            }
        }
        tag::ERROR => {
            let id = r.varint()?;
            let code = ErrorCode::from_u8(r.u8()?).ok_or(FrameError::BadValue {
                context: "error code",
            })?;
            let len = r.varint()?;
            let detail = std::str::from_utf8(r.bytes(len)?)
                .map_err(|_| FrameError::BadUtf8)?
                .to_owned();
            Frame::Error { id, code, detail }
        }
        tag::HEALTH => Frame::Health(WireHealth {
            services: r.varint()?,
            configured_workers: r.varint()?,
            alive_workers: r.varint()?,
            worker_panics: r.varint()?,
            respawns: r.varint()?,
            item_retries: r.varint()?,
            faults_injected: r.varint()?,
            pending_requests: r.varint()?,
            queued_items: r.varint()?,
            connections: r.varint()?,
        }),
        tag::SHUTDOWN => Frame::Shutdown,
        other => return Err(FrameError::UnknownTag { tag: other }),
    };
    r.finish()?;
    Ok(frame)
}

/// Incremental frame decoder.
///
/// Feed arbitrary byte slices as they arrive from the socket; pull
/// complete frames with [`Decoder::next_frame`]. The decoder never
/// consumes a partial frame, never buffers more than one maximal frame
/// beyond what was fed, and reports every malformation as a typed
/// [`FrameError`]. After an error the stream position is undefined and
/// the connection should be closed — framing cannot be resynchronized.
#[derive(Default)]
pub struct Decoder {
    buf: Vec<u8>,
    pos: usize,
}

impl Decoder {
    /// Create an empty decoder.
    pub fn new() -> Decoder {
        Decoder::default()
    }

    /// Append bytes received from the peer.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact lazily so `pos` cannot grow without bound.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of fed-but-undecoded bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Try to decode the next complete frame.
    ///
    /// `Ok(None)` means more bytes are needed. Errors are sticky in
    /// spirit: callers should drop the connection after the first one.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.pos..];
        let (len, header) = match get_varint(avail) {
            Ok(Some(pair)) => pair,
            Ok(None) => return Ok(None),
            Err(VarintError) => return Err(FrameError::BadLengthPrefix),
        };
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized { len });
        }
        let len = len as usize;
        if avail.len() < header + len {
            return Ok(None);
        }
        let payload = &avail[header..header + len];
        let frame = decode_payload(payload)?;
        self.pos += header + len;
        Ok(Some(frame))
    }
}

// ---------------------------------------------------------------------------
// Witness bit packing
// ---------------------------------------------------------------------------

/// Pack projected witness values LSB-first into chunk payload bytes.
///
/// Bit `i` of the result (byte `i / 8`, bit `i % 8`) is the value of the
/// `i`-th sampling-set variable, in `StreamBegin::sampling_set` order.
pub fn pack_bits(values: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; values.len().div_ceil(8)];
    for (i, &bit) in values.iter().enumerate() {
        if bit {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

/// Unpack chunk payload bytes into `n` projected witness values.
///
/// Returns `None` when `bits` is not exactly `ceil(n / 8)` bytes or a
/// padding bit beyond `n` is set — both indicate a corrupt chunk.
pub fn unpack_bits(bits: &[u8], n: usize) -> Option<Vec<bool>> {
    if bits.len() != n.div_ceil(8) {
        return None;
    }
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        values.push(bits[i / 8] & (1 << (i % 8)) != 0);
    }
    for i in n..bits.len() * 8 {
        if bits[i / 8] & (1 << (i % 8)) != 0 {
            return None;
        }
    }
    Some(values)
}

// ---------------------------------------------------------------------------
// Fingerprinting
// ---------------------------------------------------------------------------

/// FNV-1a offset basis (matches `unigen-instgen`'s published vectors).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Content fingerprint of a prepared formula+spec pair.
///
/// FNV-1a over the canonical DIMACS text (as produced by
/// `unigen_cnf::dimacs::to_dimacs_string`, which includes the `c ind`
/// sampling-set lines) followed by the spec's canonical bytes (family
/// byte, ε flag + bits, prepare seed). Two requests with the same
/// fingerprint are guaranteed to share one prepared `SamplerService`.
pub fn fingerprint(canonical_dimacs: &[u8], spec: &WireSpec) -> u64 {
    let hash = fnv1a_extend(FNV_OFFSET, canonical_dimacs);
    let mut tail = Vec::with_capacity(18);
    tail.push(spec.family.as_u8());
    match spec.epsilon_bits {
        Some(bits) => {
            tail.push(1);
            tail.extend_from_slice(&bits.to_le_bytes());
        }
        None => tail.push(0),
    }
    tail.extend_from_slice(&spec.prepare_seed.to_le_bytes());
    fnv1a_extend(hash, &tail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> WireSpec {
        WireSpec {
            family: Family::UniGen,
            epsilon_bits: Some(6.0f64.to_bits()),
            prepare_seed: 0xdac2_0140,
        }
    }

    fn roundtrip(frame: &Frame) {
        let bytes = frame.encode();
        let mut d = Decoder::new();
        d.feed(&bytes);
        let got = d.next_frame().expect("decode").expect("complete");
        assert_eq!(&got, frame);
        assert_eq!(d.buffered(), 0);
        assert!(d.next_frame().expect("no error").is_none());
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let (got, used) = get_varint(&buf).expect("valid").expect("complete");
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        // 11 continuation bytes can never be a valid u64 varint.
        let overlong = [0x80u8; 11];
        assert!(get_varint(&overlong).is_err());
        // 64th-bit overflow: 10th byte with payload > 1.
        let mut overflow = vec![0xffu8; 9];
        overflow.push(0x02);
        assert!(get_varint(&overflow).is_err());
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(&Frame::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip(&Frame::HelloAck {
            version: PROTOCOL_VERSION,
        });
        roundtrip(&Frame::Request {
            id: 7,
            formula: FormulaRef::Inline(b"p cnf 2 1\n1 2 0\n".to_vec()),
            spec: sample_spec(),
            count: 16,
            master_seed: 0x1234_5678,
            budget_micros: 0,
        });
        roundtrip(&Frame::Request {
            id: 8,
            formula: FormulaRef::Fingerprint(0xdead_beef),
            spec: WireSpec {
                family: Family::Uniform,
                epsilon_bits: None,
                prepare_seed: 3,
            },
            count: 1,
            master_seed: 0,
            budget_micros: 250_000,
        });
        roundtrip(&Frame::Cancel { id: 9 });
        roundtrip(&Frame::HealthReq);
        roundtrip(&Frame::StreamBegin {
            id: 7,
            fingerprint: 0xfeed_f00d,
            sampling_set: vec![0, 1, 5, 130],
        });
        roundtrip(&Frame::Chunk {
            id: 7,
            index: 3,
            kind: WireOutcomeKind::Witness,
            bits: vec![0b1010_0001, 0b0000_0011],
        });
        roundtrip(&Frame::Chunk {
            id: 7,
            index: 4,
            kind: WireOutcomeKind::Bottom,
            bits: Vec::new(),
        });
        roundtrip(&Frame::Done {
            id: 7,
            successes: 15,
            stats: WireStats {
                bsat_calls: 31,
                steals: 2,
                retries: 1,
                degradations: 0,
                faults_injected: 0,
                queue_wait_micros: 42,
                wall_micros: 1234,
            },
        });
        roundtrip(&Frame::Error {
            id: 0,
            code: ErrorCode::Malformed,
            detail: "truncated payload for frame tag 3".to_owned(),
        });
        roundtrip(&Frame::Health(WireHealth {
            services: 1,
            configured_workers: 4,
            alive_workers: 4,
            worker_panics: 0,
            respawns: 0,
            item_retries: 0,
            faults_injected: 0,
            pending_requests: 2,
            queued_items: 17,
            connections: 3,
        }));
        roundtrip(&Frame::Shutdown);
    }

    #[test]
    fn decoder_handles_byte_at_a_time_delivery() {
        let frames = [
            Frame::Hello { version: 1 },
            Frame::Cancel { id: 300 },
            Frame::HealthReq,
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend_from_slice(&f.encode());
        }
        let mut d = Decoder::new();
        let mut got = Vec::new();
        for &b in &bytes {
            d.feed(&[b]);
            while let Some(f) = d.next_frame().expect("clean stream") {
                got.push(f);
            }
        }
        assert_eq!(got.as_slice(), frames.as_slice());
    }

    #[test]
    fn oversized_length_prefix_rejected_before_buffering() {
        let mut bytes = Vec::new();
        put_varint(&mut bytes, MAX_FRAME_LEN + 1);
        let mut d = Decoder::new();
        d.feed(&bytes);
        assert_eq!(
            d.next_frame(),
            Err(FrameError::Oversized {
                len: MAX_FRAME_LEN + 1
            })
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut payload = vec![tag::HELLO];
        payload.extend_from_slice(b"NOPE");
        put_varint(&mut payload, 1);
        let mut bytes = Vec::new();
        put_varint(&mut bytes, payload.len() as u64);
        bytes.extend_from_slice(&payload);
        let mut d = Decoder::new();
        d.feed(&bytes);
        assert_eq!(d.next_frame(), Err(FrameError::BadMagic));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut payload = vec![tag::CANCEL];
        put_varint(&mut payload, 5);
        payload.push(0xaa); // stray byte after all fields
        let mut bytes = Vec::new();
        put_varint(&mut bytes, payload.len() as u64);
        bytes.extend_from_slice(&payload);
        let mut d = Decoder::new();
        d.feed(&bytes);
        assert_eq!(
            d.next_frame(),
            Err(FrameError::Trailing {
                tag: tag::CANCEL,
                extra: 1
            })
        );
    }

    #[test]
    fn request_id_zero_rejected() {
        let frame = Frame::Request {
            id: 1,
            formula: FormulaRef::Fingerprint(1),
            spec: sample_spec(),
            count: 1,
            master_seed: 0,
            budget_micros: 0,
        };
        let mut bytes = frame.encode();
        // Patch the id varint (first payload byte after the tag) to 0.
        // Layout: len varint (1 byte here), tag, id.
        assert_eq!(bytes[1], tag::REQUEST);
        bytes[2] = 0;
        let mut d = Decoder::new();
        d.feed(&bytes);
        assert_eq!(
            d.next_frame(),
            Err(FrameError::BadValue {
                context: "request id 0"
            })
        );
    }

    #[test]
    fn fingerprint_matches_reference_vectors() {
        // FNV-1a of the empty string is the offset basis; our composite
        // fingerprint continues over the spec tail, so pin the whole
        // composite for an empty formula + fixed spec.
        let spec = WireSpec {
            family: Family::UniGen,
            epsilon_bits: None,
            prepare_seed: 0,
        };
        let a = fingerprint(b"", &spec);
        let b = fingerprint(b"", &spec);
        assert_eq!(a, b);
        // Any spec field change must move the fingerprint.
        let other = WireSpec {
            prepare_seed: 1,
            ..spec
        };
        assert_ne!(a, fingerprint(b"", &other));
        let eps = WireSpec {
            epsilon_bits: Some(6.0f64.to_bits()),
            ..spec
        };
        assert_ne!(a, fingerprint(b"", &eps));
        let fam = WireSpec {
            family: Family::UniWit,
            ..spec
        };
        assert_ne!(a, fingerprint(b"", &fam));
        // And formula bytes must matter.
        assert_ne!(a, fingerprint(b"p cnf 1 0\n", &spec));
    }

    #[test]
    fn decoder_compacts_buffer() {
        let frame = Frame::HealthReq;
        let mut d = Decoder::new();
        for _ in 0..10_000 {
            d.feed(&frame.encode());
            let _ = d.next_frame().expect("ok").expect("frame");
        }
        assert_eq!(d.buffered(), 0);
        assert!(
            d.buf.len() <= 8192,
            "buffer never compacted: {}",
            d.buf.len()
        );
    }
}
