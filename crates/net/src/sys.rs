//! Thin libc-style syscall shim: epoll readiness polling on Linux.
//!
//! This is the only module in the workspace allowed to contain `unsafe`
//! or `extern "C"` (enforced by the `ffi-confined` rule in
//! `cargo run -p xtask -- lint`). Everything above it talks to the safe
//! [`Poller`] wrapper, which owns the epoll file descriptor and
//! bounds-checks every buffer it hands to the kernel.
//!
//! On non-Linux targets the module still compiles but [`Poller::new`]
//! returns `ErrorKind::Unsupported`; the serving layer surfaces that as
//! a clean CLI error instead of a build break.

/// Readiness report for one registered file descriptor.
#[derive(Debug, Clone, Copy)]
pub struct Readiness {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Descriptor is readable (or has pending accepts).
    pub readable: bool,
    /// Descriptor is writable.
    pub writable: bool,
    /// Peer hung up or the descriptor errored; treat as readable so the
    /// owner observes EOF/error on the next read.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::Readiness;
    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;

    const EPOLL_CLOEXEC: c_int = 0x8_0000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x1;
    const EPOLLOUT: u32 = 0x4;
    const EPOLLERR: u32 = 0x8;
    const EPOLLHUP: u32 = 0x10;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Kernel `struct epoll_event`. Packed on x86-64 (kernel ABI);
    /// naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Safe owner of an epoll instance.
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        /// Create a new epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            // SAFETY: epoll_create1 takes no pointers; a negative return
            // is reported via errno.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Poller { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, interest: Option<(u64, bool, bool)>) -> io::Result<()> {
            let mut storage;
            let event_ptr = match interest {
                Some((token, read, write)) => {
                    let mut mask = EPOLLRDHUP;
                    if read {
                        mask |= EPOLLIN;
                    }
                    if write {
                        mask |= EPOLLOUT;
                    }
                    storage = EpollEvent {
                        events: mask,
                        data: token,
                    };
                    &mut storage as *mut EpollEvent
                }
                None => std::ptr::null_mut(),
            };
            // SAFETY: `event_ptr` is either null (DEL, where the kernel
            // ignores it) or points at a live stack EpollEvent for the
            // duration of the call.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, event_ptr) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Register `fd` with the given interest set.
        pub fn register(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, Some((token, read, write)))
        }

        /// Replace the interest set for an already-registered `fd`.
        pub fn reregister(&self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, Some((token, read, write)))
        }

        /// Remove `fd` from the interest set.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, None)
        }

        /// Wait for readiness, appending into `out`.
        ///
        /// `timeout_ms < 0` blocks indefinitely. EINTR is retried.
        pub fn wait(&self, out: &mut Vec<Readiness>, timeout_ms: i32) -> io::Result<()> {
            const CAPACITY: usize = 64;
            let mut events = [EpollEvent { events: 0, data: 0 }; CAPACITY];
            let n = loop {
                // SAFETY: `events` is a live buffer of CAPACITY entries
                // and we pass exactly that capacity; the kernel writes at
                // most `n <= CAPACITY` entries.
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        events.as_mut_ptr(),
                        CAPACITY as c_int,
                        timeout_ms as c_int,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in events.iter().take(n) {
                // Copy out of the (possibly packed) struct before use.
                let mask = { ev.events };
                let token = { ev.data };
                out.push(Readiness {
                    token,
                    readable: mask & EPOLLIN != 0,
                    writable: mask & EPOLLOUT != 0,
                    hangup: mask & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: we own `epfd` and close it exactly once.
            unsafe {
                let _ = close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::Readiness;
    use std::io;

    /// Stub poller for non-Linux targets: compiles everywhere, fails at
    /// runtime with `Unsupported`.
    pub struct Poller {
        _private: (),
    }

    impl Poller {
        /// Always returns `ErrorKind::Unsupported` on this target.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the unigen-net readiness loop requires epoll (Linux)",
            ))
        }

        /// Unreachable on this target (`new` never succeeds).
        pub fn register(&self, _fd: i32, _token: u64, _read: bool, _write: bool) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        /// Unreachable on this target (`new` never succeeds).
        pub fn reregister(
            &self,
            _fd: i32,
            _token: u64,
            _read: bool,
            _write: bool,
        ) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        /// Unreachable on this target (`new` never succeeds).
        pub fn deregister(&self, _fd: i32) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }

        /// Unreachable on this target (`new` never succeeds).
        pub fn wait(&self, _out: &mut Vec<Readiness>, _timeout_ms: i32) -> io::Result<()> {
            Err(io::Error::from(io::ErrorKind::Unsupported))
        }
    }
}

pub use imp::Poller;

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn poller_reports_readability() {
        let poller = Poller::new().expect("epoll_create1");
        let (mut tx, rx) = UnixStream::pair().expect("socketpair");
        rx.set_nonblocking(true).expect("nonblocking");
        poller
            .register(rx.as_raw_fd(), 42, true, false)
            .expect("register");

        let mut out = Vec::new();
        poller.wait(&mut out, 0).expect("wait");
        assert!(out.is_empty(), "no data yet: {out:?}");

        tx.write_all(b"x").expect("write");
        poller.wait(&mut out, 1000).expect("wait");
        assert!(out.iter().any(|r| r.token == 42 && r.readable));

        poller.deregister(rx.as_raw_fd()).expect("deregister");
    }

    #[test]
    fn poller_reregister_toggles_write_interest() {
        let poller = Poller::new().expect("epoll_create1");
        let (tx, _rx) = UnixStream::pair().expect("socketpair");
        tx.set_nonblocking(true).expect("nonblocking");
        poller
            .register(tx.as_raw_fd(), 7, true, false)
            .expect("register");
        let mut out = Vec::new();
        poller.wait(&mut out, 0).expect("wait");
        assert!(!out.iter().any(|r| r.token == 7 && r.writable));

        poller
            .reregister(tx.as_raw_fd(), 7, true, true)
            .expect("reregister");
        out.clear();
        poller.wait(&mut out, 1000).expect("wait");
        assert!(out.iter().any(|r| r.token == 7 && r.writable));
    }
}
