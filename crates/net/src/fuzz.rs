//! Deterministic frame-corruption generator for the wire-decoder fuzz
//! lane (`tests/fuzz_frames.rs`, env-tunable via `NET_FUZZ_CASES` /
//! `NET_FUZZ_START`).
//!
//! Each case derives everything from its index through SplitMix64:
//! a random valid frame sequence, a corruption (truncation, bit flip,
//! oversized length prefix, or interleaved garbage), and a random
//! chunking of the bytes fed to the decoder. The invariants asserted
//! are the decoder's whole contract: never panic, never consume more
//! bytes than were fed, decode the clean sequence identically, and
//! report corruption only as a typed [`FrameError`].
//!
//! [`FrameError`]: crate::wire::FrameError

use crate::wire::{
    put_varint, Decoder, ErrorCode, Family, FormulaRef, Frame, WireHealth, WireOutcomeKind,
    WireSpec, WireStats, MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// SplitMix64 step (same generator the fuzz harnesses use).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn random_frame(rng: &mut u64) -> Frame {
    match splitmix64(rng) % 12 {
        0 => Frame::Hello {
            version: PROTOCOL_VERSION,
        },
        1 => Frame::HelloAck {
            version: splitmix64(rng) % 4,
        },
        2 => Frame::Request {
            id: 1 + splitmix64(rng) % 1000,
            formula: FormulaRef::Inline({
                let len = (splitmix64(rng) % 40) as usize;
                (0..len).map(|_| (splitmix64(rng) & 0x7f) as u8).collect()
            }),
            spec: WireSpec {
                family: Family::from_u8((splitmix64(rng) % 4) as u8).unwrap_or(Family::UniGen),
                epsilon_bits: if splitmix64(rng) % 2 == 0 {
                    Some(splitmix64(rng))
                } else {
                    None
                },
                prepare_seed: splitmix64(rng),
            },
            count: splitmix64(rng) % 100,
            master_seed: splitmix64(rng),
            budget_micros: splitmix64(rng) % 1_000_000,
        },
        3 => Frame::Request {
            id: 1 + splitmix64(rng) % 1000,
            formula: FormulaRef::Fingerprint(splitmix64(rng)),
            spec: WireSpec {
                family: Family::UniGen,
                epsilon_bits: None,
                prepare_seed: splitmix64(rng),
            },
            count: splitmix64(rng) % 100,
            master_seed: splitmix64(rng),
            budget_micros: 0,
        },
        4 => Frame::Cancel {
            id: splitmix64(rng),
        },
        5 => Frame::HealthReq,
        6 => Frame::StreamBegin {
            id: splitmix64(rng) % 100,
            fingerprint: splitmix64(rng),
            sampling_set: {
                let n = (splitmix64(rng) % 20) as usize;
                (0..n).map(|_| (splitmix64(rng) % 5000) as u32).collect()
            },
        },
        7 => Frame::Chunk {
            id: splitmix64(rng) % 100,
            index: splitmix64(rng) % 1000,
            kind: WireOutcomeKind::from_u8((splitmix64(rng) % 4) as u8)
                .unwrap_or(WireOutcomeKind::Bottom),
            bits: {
                let n = (splitmix64(rng) % 16) as usize;
                (0..n).map(|_| (splitmix64(rng) & 0xff) as u8).collect()
            },
        },
        8 => Frame::Done {
            id: splitmix64(rng) % 100,
            successes: splitmix64(rng) % 1000,
            stats: WireStats {
                bsat_calls: splitmix64(rng) % 10_000,
                steals: splitmix64(rng) % 100,
                retries: splitmix64(rng) % 10,
                degradations: splitmix64(rng) % 10,
                faults_injected: splitmix64(rng) % 10,
                queue_wait_micros: splitmix64(rng),
                wall_micros: splitmix64(rng),
            },
        },
        9 => Frame::Error {
            id: splitmix64(rng) % 100,
            code: ErrorCode::from_u8(1 + (splitmix64(rng) % 10) as u8)
                .unwrap_or(ErrorCode::Malformed),
            detail: {
                let len = (splitmix64(rng) % 30) as usize;
                (0..len)
                    .map(|_| char::from(b'a' + (splitmix64(rng) % 26) as u8))
                    .collect()
            },
        },
        10 => Frame::Health(WireHealth {
            services: splitmix64(rng) % 10,
            configured_workers: splitmix64(rng) % 64,
            alive_workers: splitmix64(rng) % 64,
            worker_panics: splitmix64(rng) % 4,
            respawns: splitmix64(rng) % 4,
            item_retries: splitmix64(rng) % 4,
            faults_injected: splitmix64(rng) % 4,
            pending_requests: splitmix64(rng) % 16,
            queued_items: splitmix64(rng) % 256,
            connections: splitmix64(rng) % 100,
        }),
        _ => Frame::Shutdown,
    }
}

/// Which corruption a case applied (for failure messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Stream cut short mid-frame.
    Truncate,
    /// One random bit flipped.
    BitFlip,
    /// A length prefix claiming more than [`MAX_FRAME_LEN`] bytes.
    OversizedLength,
    /// Random garbage bytes spliced into the stream.
    InterleavedGarbage,
}

/// Run one deterministic corruption case. Returns a description of the
/// violated invariant on failure.
///
/// Reproduce a failing case `i` with:
/// `NET_FUZZ_START=i NET_FUZZ_CASES=1 cargo test -p unigen-net --test fuzz_frames`
pub fn frame_corruption_case(case: u64) -> Result<Corruption, String> {
    let mut rng = case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d;

    // 1. A clean multi-frame stream must decode byte-for-byte.
    let frame_count = 1 + (splitmix64(&mut rng) % 4) as usize;
    let frames: Vec<Frame> = (0..frame_count).map(|_| random_frame(&mut rng)).collect();
    let mut clean = Vec::new();
    for frame in &frames {
        clean.extend_from_slice(&frame.encode());
    }
    let mut decoder = Decoder::new();
    decoder.feed(&clean);
    for (i, expected) in frames.iter().enumerate() {
        match decoder.next_frame() {
            Ok(Some(got)) if &got == expected => {}
            other => {
                return Err(format!(
                    "clean frame {i} failed to round-trip: got {other:?}, expected {expected:?}"
                ))
            }
        }
    }
    match decoder.next_frame() {
        Ok(None) => {}
        other => return Err(format!("clean stream had residue: {other:?}")),
    }

    // 2. Corrupt the stream.
    let mut bytes = clean.clone();
    let corruption = match splitmix64(&mut rng) % 4 {
        0 => {
            let keep = (splitmix64(&mut rng) as usize) % bytes.len().max(1);
            bytes.truncate(keep);
            Corruption::Truncate
        }
        1 => {
            if !bytes.is_empty() {
                let bit = (splitmix64(&mut rng) as usize) % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            Corruption::BitFlip
        }
        2 => {
            let mut prefix = Vec::new();
            put_varint(
                &mut prefix,
                MAX_FRAME_LEN + 1 + splitmix64(&mut rng) % (1 << 30),
            );
            let at = (splitmix64(&mut rng) as usize) % (bytes.len() + 1);
            // Splice the hostile header at a byte boundary; whatever
            // follows becomes its (never-delivered) payload.
            let tail = bytes.split_off(at);
            bytes.extend_from_slice(&prefix);
            bytes.extend_from_slice(&tail);
            Corruption::OversizedLength
        }
        _ => {
            let n = 1 + (splitmix64(&mut rng) % 16) as usize;
            let at = (splitmix64(&mut rng) as usize) % (bytes.len() + 1);
            let garbage: Vec<u8> = (0..n)
                .map(|_| (splitmix64(&mut rng) & 0xff) as u8)
                .collect();
            let tail = bytes.split_off(at);
            bytes.extend_from_slice(&garbage);
            bytes.extend_from_slice(&tail);
            Corruption::InterleavedGarbage
        }
    };

    // 3. Feed the corrupted bytes in random-sized slices; the decoder
    //    must only ever yield frames or one typed error — no panics
    //    (the test driver wraps this in catch_unwind) and no
    //    over-reads past what was fed.
    let mut decoder = Decoder::new();
    let mut fed = 0usize;
    let mut decoded = 0usize;
    while fed < bytes.len() {
        let chunk = 1 + (splitmix64(&mut rng) as usize) % 37;
        let end = bytes.len().min(fed + chunk);
        decoder.feed(&bytes[fed..end]);
        fed = end;
        loop {
            match decoder.next_frame() {
                Ok(Some(_)) => {
                    decoded += 1;
                    if decoded > frames.len() + 20 {
                        return Err(format!(
                            "decoder invented frames: {decoded} decoded from {} corrupted bytes",
                            bytes.len()
                        ));
                    }
                }
                Ok(None) => break,
                // A typed error ends the case: real connections close
                // here and framing is not resynchronizable.
                Err(_) => return Ok(corruption),
            }
        }
        if decoder.buffered() > bytes.len() {
            return Err(format!(
                "decoder over-read: buffered {} of {} fed bytes",
                decoder.buffered(),
                bytes.len()
            ));
        }
    }
    Ok(corruption)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pin the case derivation so `NET_FUZZ_START` reproduction
    /// commands stay meaningful across refactors.
    #[test]
    fn case_derivation_is_stable() {
        let a = frame_corruption_case(0);
        let b = frame_corruption_case(0);
        assert_eq!(a, b, "case 0 must be deterministic");
        for case in 0..16 {
            frame_corruption_case(case).unwrap_or_else(|err| {
                panic!("fuzz case {case} violated a decoder invariant: {err}")
            });
        }
    }
}
