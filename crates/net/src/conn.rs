//! Per-connection state shared between the readiness loop and the
//! request-drainer threads.
//!
//! Everything here is built on `conc` primitives so the whole
//! accept→dispatch→writer protocol runs under the model checker in
//! `tests/model_conn.rs` exactly as it runs in production:
//!
//! - [`Outbound`]: a bounded per-connection write buffer. Drainer
//!   threads block in [`Outbound::send`] when the client is slow
//!   (backpressure), the event loop drains with the non-blocking
//!   [`Outbound::pop`], and a caller-supplied waker nudges the readiness
//!   loop whenever bytes become available.
//! - [`ConnRequests`]: the in-flight request table with per-request
//!   cancellation flags.
//! - [`run_request`]: the dispatch protocol — bounded `try_submit`
//!   retries (so queue backpressure reaches the wire as a typed `Busy`
//!   error), then streaming index-ordered chunks from the
//!   `ResponseHandle` until done, cancelled, or disconnected.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use conc::atomic::{AtomicBool, AtomicU64, Ordering};
use conc::sync::{Condvar, Mutex, MutexGuard};
use unigen::{OutcomeKind, SampleRequest, SamplerService, TrySubmitError};
use unigen_cnf::Var;

use crate::wire::{self, ErrorCode, Frame, WireOutcomeKind, WireStats};

/// Acquire a connection-layer mutex, treating poisoning as fatal: a
/// panic inside one of these short critical sections means the
/// connection state is unrecoverable.
fn lock_ok<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(_) => panic!("connection-layer mutex poisoned"),
    }
}

/// The peer went away: the outbound buffer was closed underneath a
/// sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

struct OutboundState {
    frames: VecDeque<Vec<u8>>,
    queued_bytes: usize,
    closed: bool,
}

/// Bounded per-connection write buffer with blocking producers and a
/// non-blocking consumer.
///
/// Capacity is in bytes. A producer whose frame would overflow the
/// capacity blocks on the `space` condvar until the event loop drains —
/// unless the buffer is empty, in which case one oversized frame is
/// always admitted so a frame larger than the capacity cannot deadlock.
pub struct Outbound {
    capacity: usize,
    state: Mutex<OutboundState>,
    space: Condvar,
    waker: Box<dyn Fn() + Send + Sync>,
}

impl Outbound {
    /// Create a buffer holding up to `capacity` bytes of encoded frames.
    /// `waker` is invoked (outside the internal lock) after every
    /// enqueue and on close, to nudge the readiness loop.
    pub fn new(capacity: usize, waker: Box<dyn Fn() + Send + Sync>) -> Outbound {
        Outbound {
            capacity: capacity.max(1),
            state: Mutex::new(OutboundState {
                frames: VecDeque::new(),
                queued_bytes: 0,
                closed: false,
            }),
            space: Condvar::new(),
            waker,
        }
    }

    /// Enqueue an encoded frame, blocking while the buffer is over
    /// capacity. This is the backpressure edge: a slow client eventually
    /// stalls its drainer threads here, which stalls their
    /// `ResponseHandle` consumption, which keeps the service queue slot
    /// occupied, which surfaces as `QueueFull` to new submissions.
    pub fn send(&self, frame: Vec<u8>) -> Result<(), Disconnected> {
        let mut state = lock_ok(&self.state);
        loop {
            if state.closed {
                return Err(Disconnected);
            }
            let fits = state.queued_bytes == 0 || state.queued_bytes + frame.len() <= self.capacity;
            if fits {
                break;
            }
            state = match self.space.wait(state) {
                Ok(guard) => guard,
                Err(_) => panic!("connection-layer mutex poisoned"),
            };
        }
        state.queued_bytes += frame.len();
        state.frames.push_back(frame);
        drop(state);
        (self.waker)();
        Ok(())
    }

    /// Enqueue without blocking on capacity. Reserved for event-loop
    /// originated frames (hello acks, typed errors, health snapshots)
    /// so the readiness loop itself can never block on a slow client.
    pub fn send_now(&self, frame: Vec<u8>) -> Result<(), Disconnected> {
        let mut state = lock_ok(&self.state);
        if state.closed {
            return Err(Disconnected);
        }
        state.queued_bytes += frame.len();
        state.frames.push_back(frame);
        drop(state);
        (self.waker)();
        Ok(())
    }

    /// Dequeue the next encoded frame, waking one blocked producer.
    /// Non-blocking; the event loop calls this from the drain phase.
    pub fn pop(&self) -> Option<Vec<u8>> {
        let mut state = lock_ok(&self.state);
        let frame = state.frames.pop_front()?;
        state.queued_bytes -= frame.len();
        self.space.notify_one();
        Some(frame)
    }

    /// Mark the connection gone: wakes every blocked producer with
    /// [`Disconnected`] and nudges the readiness loop.
    pub fn close(&self) {
        {
            let mut state = lock_ok(&self.state);
            state.closed = true;
            state.frames.clear();
            state.queued_bytes = 0;
            self.space.notify_all();
        }
        (self.waker)();
    }

    /// Whether [`Outbound::close`] has run.
    pub fn is_closed(&self) -> bool {
        lock_ok(&self.state).closed
    }

    /// Bytes currently queued (the serve log's per-connection depth).
    pub fn queued_bytes(&self) -> usize {
        lock_ok(&self.state).queued_bytes
    }

    /// Frames currently queued.
    pub fn queued_frames(&self) -> usize {
        lock_ok(&self.state).frames.len()
    }
}

/// In-flight request table for one connection: request id → cancel flag.
#[derive(Default)]
pub struct ConnRequests {
    inner: Mutex<HashMap<u64, Arc<AtomicBool>>>,
}

impl ConnRequests {
    /// Empty table.
    pub fn new() -> ConnRequests {
        ConnRequests::default()
    }

    /// Register a new request id. Returns its cancel flag, or `None` if
    /// the id is already in flight (a protocol error the caller turns
    /// into a typed `Malformed` frame).
    pub fn begin(&self, id: u64) -> Option<Arc<AtomicBool>> {
        let mut inner = lock_ok(&self.inner);
        if inner.contains_key(&id) {
            return None;
        }
        let flag = Arc::new(AtomicBool::new(false));
        inner.insert(id, Arc::clone(&flag));
        Some(flag)
    }

    /// Raise the cancel flag for `id`. Returns whether the id was in
    /// flight (a finished or unknown id is silently ignored — the
    /// cancel raced the stream trailer, which is fine).
    pub fn cancel(&self, id: u64) -> bool {
        match lock_ok(&self.inner).get(&id) {
            Some(flag) => {
                flag.store(true, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Raise every in-flight cancel flag (client disconnected).
    pub fn cancel_all(&self) {
        for flag in lock_ok(&self.inner).values() {
            flag.store(true, Ordering::Release);
        }
    }

    /// Drop a finished request id.
    pub fn finish(&self, id: u64) {
        lock_ok(&self.inner).remove(&id);
    }

    /// Number of requests currently in flight.
    pub fn active(&self) -> usize {
        lock_ok(&self.inner).len()
    }
}

/// How a drained request ended (for the serve log line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestEnd {
    /// Streamed every chunk and the trailer.
    Completed {
        /// Witness outcomes in the batch.
        successes: u64,
    },
    /// The bounded `try_submit` retry budget ran out; a typed `Busy`
    /// error was sent instead of a stream.
    Busy,
    /// A `Cancel` frame (or disconnect) stopped the stream early. The
    /// underlying service request still runs to completion — dropping
    /// the `ResponseHandle` is defined to free the queue slot once the
    /// workers finish — but no further chunks are sent.
    Cancelled,
    /// The outbound buffer closed mid-stream (client went away).
    Disconnected,
}

/// Everything [`run_request`] needs to know about one wire request.
pub struct RequestJob {
    /// Wire request id (echoed in every response frame).
    pub id: u64,
    /// The service request (count, master seed, budget).
    pub request: SampleRequest,
    /// Fingerprint of the prepared formula+spec, echoed in
    /// `StreamBegin` so the client can re-request by reference.
    pub fingerprint: u64,
    /// Projected sampling set, in canonical order.
    pub sampling_set: Vec<Var>,
}

/// Drive one request through the service and stream its response.
///
/// Runs on a dedicated drainer thread. `cancel` is the flag registered
/// in [`ConnRequests`]; `submit_retries` is the connection's retry
/// counter surfaced in the serve log and health frames; `retry_budget`
/// bounds how many times a `QueueFull` is retried (with a scheduler
/// yield between attempts) before the request is rejected as `Busy`.
pub fn run_request(
    service: &SamplerService,
    job: RequestJob,
    outbound: &Outbound,
    cancel: &AtomicBool,
    submit_retries: &AtomicU64,
    retry_budget: usize,
) -> RequestEnd {
    let mut request = job.request;
    let mut attempt = 0usize;
    let handle = loop {
        if cancel.load(Ordering::Acquire) {
            let _ = outbound.send_now(cancelled_frame(job.id));
            return RequestEnd::Cancelled;
        }
        match service.try_submit(request) {
            Ok(handle) => break handle,
            Err(TrySubmitError::QueueFull { request: rejected }) => {
                if attempt >= retry_budget {
                    let _ = outbound.send_now(
                        Frame::Error {
                            id: job.id,
                            code: ErrorCode::Busy,
                            detail: format!(
                                "service queue full after {attempt} retries; resubmit later"
                            ),
                        }
                        .encode(),
                    );
                    return RequestEnd::Busy;
                }
                attempt += 1;
                submit_retries.fetch_add(1, Ordering::Relaxed);
                request = rejected;
                conc::thread::yield_now();
            }
            // `TrySubmitError` is non-exhaustive; surface any future
            // rejection kind as a retryable Busy rather than crashing.
            Err(other) => {
                let _ = outbound.send_now(
                    Frame::Error {
                        id: job.id,
                        code: ErrorCode::Busy,
                        detail: other.to_string(),
                    }
                    .encode(),
                );
                return RequestEnd::Busy;
            }
        }
    };

    let begin = Frame::StreamBegin {
        id: job.id,
        fingerprint: job.fingerprint,
        sampling_set: job.sampling_set.iter().map(|v| v.index() as u32).collect(),
    }
    .encode();
    if outbound.send(begin).is_err() {
        return RequestEnd::Disconnected;
    }

    let mut successes = 0u64;
    let mut stats = WireStats::default();
    for (index, outcome) in handle.enumerate() {
        if cancel.load(Ordering::Acquire) {
            let _ = outbound.send_now(cancelled_frame(job.id));
            return RequestEnd::Cancelled;
        }
        let kind = match outcome.kind {
            OutcomeKind::Witness => WireOutcomeKind::Witness,
            OutcomeKind::Bottom => WireOutcomeKind::Bottom,
            OutcomeKind::Interrupted => WireOutcomeKind::Interrupted,
            OutcomeKind::Faulted => WireOutcomeKind::Faulted,
        };
        let bits = match &outcome.witness {
            Some(model) => {
                successes += 1;
                let values: Vec<bool> = job.sampling_set.iter().map(|&v| model.value(v)).collect();
                wire::pack_bits(&values)
            }
            None => Vec::new(),
        };
        stats.bsat_calls += outcome.stats.bsat_calls as u64;
        stats.steals += outcome.stats.steals as u64;
        stats.retries += outcome.stats.retries as u64;
        stats.degradations += outcome.stats.degradations as u64;
        stats.faults_injected += outcome.stats.faults_injected as u64;
        stats.queue_wait_micros += outcome.stats.queue_wait.as_micros() as u64;
        stats.wall_micros += outcome.stats.wall_time.as_micros() as u64;
        let chunk = Frame::Chunk {
            id: job.id,
            index: index as u64,
            kind,
            bits,
        }
        .encode();
        if outbound.send(chunk).is_err() {
            return RequestEnd::Disconnected;
        }
    }

    let done = Frame::Done {
        id: job.id,
        successes,
        stats,
    }
    .encode();
    if outbound.send(done).is_err() {
        return RequestEnd::Disconnected;
    }
    RequestEnd::Completed { successes }
}

fn cancelled_frame(id: u64) -> Vec<u8> {
    Frame::Error {
        id,
        code: ErrorCode::Cancelled,
        detail: "request cancelled".to_owned(),
    }
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop_waker() -> Box<dyn Fn() + Send + Sync> {
        Box::new(|| {})
    }

    #[test]
    fn outbound_oversized_frame_admitted_when_empty() {
        let out = Outbound::new(4, noop_waker());
        // 10 bytes > capacity 4, but the buffer is empty: must not block.
        out.send(vec![0u8; 10]).expect("oversized frame admitted");
        assert_eq!(out.queued_bytes(), 10);
        assert_eq!(out.pop().expect("frame").len(), 10);
        assert_eq!(out.queued_bytes(), 0);
    }

    #[test]
    fn outbound_close_unblocks_send() {
        let out = Arc::new(Outbound::new(1, noop_waker()));
        out.send(vec![0u8; 8]).expect("first frame");
        let sender = {
            let out = Arc::clone(&out);
            conc::thread::spawn(move || out.send(vec![1u8; 8]))
        };
        out.close();
        assert_eq!(sender.join().expect("join"), Err(Disconnected));
    }

    #[test]
    fn conn_requests_reject_duplicate_ids() {
        let table = ConnRequests::new();
        let flag = table.begin(5).expect("fresh id");
        assert!(table.begin(5).is_none(), "duplicate id must be rejected");
        assert!(table.cancel(5));
        assert!(flag.load(Ordering::Acquire));
        table.finish(5);
        assert!(!table.cancel(5), "finished id cancels are ignored");
        assert!(table.begin(5).is_some(), "finished id is reusable");
    }
}
