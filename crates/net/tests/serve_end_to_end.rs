//! End-to-end wire tests: a real daemon on real sockets, exercised by
//! the blocking [`Client`] and by raw byte-level connections.
//!
//! The central assertion is the determinism contract: for a fixed
//! `(formula, spec, count, master_seed)`, the witness stream a client
//! receives over the wire is bit-identical to
//! [`WitnessSampler::sample_batch`] run in-process — per request, at
//! any concurrency.

#![cfg(target_os = "linux")]

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use unigen::{OutcomeKind, SamplerBuilder, UniGen, WitnessSampler};
use unigen_cnf::dimacs;
use unigen_net::client::{Client, ClientError, ClientRequest};
use unigen_net::server::default_spec;
use unigen_net::wire::WireOutcomeKind;
use unigen_net::{serve, Decoder, ErrorCode, Frame, ServeConfig, PROTOCOL_VERSION};

const DIMACS: &str = "p cnf 5 3\n1 2 0\n-3 4 0\n2 5 0\n";
const EPSILON: f64 = 6.0;

fn unique_socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("unigen-net-{tag}-{}.sock", std::process::id()))
}

fn unix_config(tag: &str) -> ServeConfig {
    ServeConfig {
        unix: Some(unique_socket_path(tag)),
        quiet: true,
        ..ServeConfig::default()
    }
}

/// The request spec every test uses (explicit ε so the in-process
/// reference below is guaranteed to mirror it).
fn test_spec() -> unigen_net::wire::WireSpec {
    let mut spec = default_spec();
    spec.epsilon_bits = Some(EPSILON.to_bits());
    spec
}

/// In-process reference batch with the same spec: the projected bits
/// every wire stream must reproduce exactly.
fn reference_batch(count: usize, master_seed: u64) -> Vec<(WireOutcomeKind, Option<Vec<bool>>)> {
    let formula = dimacs::parse(DIMACS).expect("test formula parses");
    let sampling_set = formula.sampling_set_or_all();
    let built = SamplerBuilder::unigen(&formula)
        .epsilon(EPSILON)
        .seed(test_spec().prepare_seed)
        .build()
        .expect("test formula prepares");
    let mut sampler: UniGen = built
        .as_unigen()
        .cloned()
        .expect("a UniGen spec builds a UniGen sampler");
    sampler
        .sample_batch(count, master_seed)
        .into_iter()
        .map(|outcome| {
            let kind = match outcome.kind {
                OutcomeKind::Witness => WireOutcomeKind::Witness,
                OutcomeKind::Bottom => WireOutcomeKind::Bottom,
                OutcomeKind::Interrupted => WireOutcomeKind::Interrupted,
                OutcomeKind::Faulted => WireOutcomeKind::Faulted,
            };
            let bits = outcome
                .witness
                .as_ref()
                .map(|model| sampling_set.iter().map(|&v| model.value(v)).collect());
            (kind, bits)
        })
        .collect()
}

fn assert_batch_matches_reference(batch: &unigen_net::WireBatch, count: usize, master_seed: u64) {
    let reference = reference_batch(count, master_seed);
    assert_eq!(
        batch.outcomes.len(),
        reference.len(),
        "wire batch length diverged from in-process sample_batch"
    );
    for (i, (wire, (kind, bits))) in batch.outcomes.iter().zip(&reference).enumerate() {
        assert_eq!(wire.index, i as u64, "stream must be index-ordered");
        assert_eq!(&wire.kind, kind, "outcome {i} kind diverged");
        assert_eq!(&wire.witness, bits, "outcome {i} witness bits diverged");
    }
}

#[test]
fn unix_round_trip_is_bit_identical_and_fingerprint_reusable() {
    let handle = serve(unix_config("roundtrip")).expect("daemon starts");
    let path = handle.unix_path().expect("unix listener bound").clone();

    let mut client = Client::connect_unix(&path).expect("client connects");
    let request = ClientRequest::inline(DIMACS, 16, 42).with_spec(test_spec());
    let batch = client.sample(&request).expect("batch streams");
    assert_batch_matches_reference(&batch, 16, 42);

    // Re-request by fingerprint: no DIMACS on the wire, same service
    // entry, and a different master seed still matches in-process.
    let again = client
        .sample(&ClientRequest::by_fingerprint(batch.fingerprint, 8, 7).with_spec(test_spec()))
        .expect("fingerprint re-request streams");
    assert_eq!(again.fingerprint, batch.fingerprint);
    assert_batch_matches_reference(&again, 8, 7);

    handle.shutdown();
}

#[test]
fn concurrent_tcp_clients_each_get_bit_identical_batches() {
    let config = ServeConfig {
        tcp: Some("127.0.0.1:0".to_string()),
        quiet: true,
        ..ServeConfig::default()
    };
    let handle = serve(config).expect("daemon starts");
    let addr = handle.tcp_addr().expect("tcp listener bound").to_string();

    let threads: Vec<_> = (0..4u64)
        .map(|i| {
            let addr = addr.clone();
            conc::thread::spawn(move || {
                let master_seed = 100 + i;
                let mut client = Client::connect_tcp(&addr).expect("client connects");
                let request = ClientRequest::inline(DIMACS, 12, master_seed).with_spec(test_spec());
                let batch = client.sample(&request).expect("batch streams");
                (batch, master_seed)
            })
        })
        .collect();
    for thread in threads {
        let (batch, master_seed) = thread.join().expect("client thread");
        assert_batch_matches_reference(&batch, 12, master_seed);
    }

    handle.shutdown();
}

#[test]
fn future_protocol_version_is_rejected() {
    let handle = serve(unix_config("version")).expect("daemon starts");
    let path = handle.unix_path().expect("unix listener bound").clone();

    let mut stream = UnixStream::connect(&path).expect("raw connect");
    stream
        .write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION + 98,
            }
            .encode(),
        )
        .expect("hello sent");
    let mut decoder = Decoder::new();
    let mut bytes = Vec::new();
    stream
        .read_to_end(&mut bytes)
        .expect("server closes after rejecting");
    decoder.feed(&bytes);
    match decoder.next_frame() {
        Ok(Some(Frame::Error { id: 0, code, .. })) => {
            assert_eq!(code, ErrorCode::UnsupportedVersion);
        }
        other => panic!("expected UnsupportedVersion error frame, got {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn malformed_bytes_get_a_typed_error_then_close() {
    let handle = serve(unix_config("malformed")).expect("daemon starts");
    let path = handle.unix_path().expect("unix listener bound").clone();

    let mut stream = UnixStream::connect(&path).expect("raw connect");
    stream
        .write_all(
            &Frame::Hello {
                version: PROTOCOL_VERSION,
            }
            .encode(),
        )
        .expect("hello sent");
    // A length prefix claiming a frame larger than MAX_FRAME_LEN.
    stream
        .write_all(&[0xff, 0xff, 0xff, 0xff, 0x7f])
        .expect("garbage sent");
    let mut decoder = Decoder::new();
    let mut bytes = Vec::new();
    stream
        .read_to_end(&mut bytes)
        .expect("server closes after the error");
    decoder.feed(&bytes);
    let mut saw_malformed = false;
    while let Ok(Some(frame)) = decoder.next_frame() {
        if let Frame::Error { id: 0, code, .. } = frame {
            assert_eq!(code, ErrorCode::Malformed);
            saw_malformed = true;
        }
    }
    assert!(
        saw_malformed,
        "server must send a typed Malformed error before closing"
    );

    handle.shutdown();
}

#[test]
fn unsat_formula_yields_a_typed_unsat_error() {
    let handle = serve(unix_config("unsat")).expect("daemon starts");
    let path = handle.unix_path().expect("unix listener bound").clone();

    let mut client = Client::connect_unix(&path).expect("client connects");
    let request = ClientRequest::inline("p cnf 1 2\n1 0\n-1 0\n", 4, 1).with_spec(test_spec());
    match client.sample(&request) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::Unsat),
        other => panic!("expected a typed Unsat rejection, got {other:?}"),
    }
    // The connection survives a rejected request.
    let batch = client
        .sample(&ClientRequest::inline(DIMACS, 4, 9).with_spec(test_spec()))
        .expect("connection still usable");
    assert_batch_matches_reference(&batch, 4, 9);

    handle.shutdown();
}

#[test]
fn cancel_mid_stream_terminates_and_connection_stays_usable() {
    let handle = serve(unix_config("cancel")).expect("daemon starts");
    let path = handle.unix_path().expect("unix listener bound").clone();

    let mut client = Client::connect_unix(&path).expect("client connects");
    // Large enough that the cancel frame usually lands mid-stream; the
    // contract allows either outcome of the race, and both must leave
    // the connection usable.
    let big = ClientRequest::inline(DIMACS, 5_000, 3).with_spec(test_spec());
    let id = client.submit(&big).expect("submitted");
    client.cancel(id).expect("cancel sent");
    match client.collect(id) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, ErrorCode::Cancelled),
        Ok(batch) => assert_eq!(
            batch.outcomes.len(),
            5_000,
            "a completed stream is complete"
        ),
        Err(other) => panic!("unexpected failure collecting a cancelled request: {other}"),
    }

    let batch = client
        .sample(&ClientRequest::inline(DIMACS, 6, 11).with_spec(test_spec()))
        .expect("connection usable after cancel");
    assert_batch_matches_reference(&batch, 6, 11);

    handle.shutdown();
}

#[test]
fn health_frame_reports_services_and_connections() {
    let mut config = unix_config("health");
    config.preload = vec![DIMACS.to_string()];
    let handle = serve(config).expect("daemon starts");
    let path = handle.unix_path().expect("unix listener bound").clone();

    let mut client = Client::connect_unix(&path).expect("client connects");
    let health = client.health().expect("health round-trips");
    assert_eq!(
        health.services, 1,
        "preloaded formula counts as one service"
    );
    assert!(health.configured_workers >= 1);
    assert_eq!(health.connections, 1);
    assert_eq!(health.worker_panics, 0);

    handle.shutdown();
}
