//! Golden-vector pinning for the wire protocol: each canonical frame's
//! encoding is committed as a hex string, so any byte-level change to
//! the format (field order, varint width, tag values, magic) fails this
//! test and forces a deliberate `PROTOCOL_VERSION` bump. The decode
//! direction is asserted too: the committed bytes must round-trip back
//! to the identical frame value.

use unigen_net::wire::{
    pack_bits, ErrorCode, Family, FormulaRef, WireHealth, WireOutcomeKind, WireSpec, WireStats,
};
use unigen_net::{Decoder, Frame, PROTOCOL_VERSION};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len() % 2 == 0, "odd hex literal");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("bad hex literal"))
        .collect()
}

/// Assert both directions: `frame` encodes to exactly `golden`, and
/// `golden` decodes back to `frame`.
fn pin(frame: &Frame, golden: &str) {
    let encoded = frame.encode();
    assert_eq!(
        hex(&encoded),
        golden,
        "encoding drifted for {frame:?}; if intentional, bump PROTOCOL_VERSION and re-pin"
    );
    let mut decoder = Decoder::new();
    decoder.feed(&unhex(golden));
    let decoded = decoder
        .next_frame()
        .expect("golden bytes must decode")
        .expect("golden bytes hold one complete frame");
    assert_eq!(&decoded, frame, "golden bytes decoded to a different frame");
    assert!(
        decoder.next_frame().expect("no trailing error").is_none(),
        "golden bytes held more than one frame"
    );
}

#[test]
fn hello_and_ack_are_pinned() {
    assert_eq!(PROTOCOL_VERSION, 1, "re-pin every golden vector on a bump");
    pin(
        &Frame::Hello {
            version: PROTOCOL_VERSION,
        },
        "060155474e5701",
    );
    pin(
        &Frame::HelloAck {
            version: PROTOCOL_VERSION,
        },
        "020201",
    );
}

#[test]
fn request_frame_is_pinned() {
    let frame = Frame::Request {
        id: 7,
        formula: FormulaRef::Inline(b"p cnf 2 1\n1 2 0\n".to_vec()),
        spec: WireSpec {
            family: Family::UniGen,
            epsilon_bits: Some(6.0f64.to_bits()),
            prepare_seed: 42,
        },
        count: 16,
        master_seed: 0xdead_beef,
        budget_micros: 1_500_000,
    };
    pin(&frame, "32030700107020636e66203220310a31203220300a000100000000000018402a0000000000000010efbeadde00000000e0c65b");
}

#[test]
fn chunk_frame_is_pinned() {
    let frame = Frame::Chunk {
        id: 7,
        index: 3,
        kind: WireOutcomeKind::Witness,
        bits: pack_bits(&[true, false, true, true, false]),
    };
    pin(&frame, "0607070300010d");
}

#[test]
fn cancel_frame_is_pinned() {
    pin(&Frame::Cancel { id: 7 }, "020407");
}

#[test]
fn error_frame_is_pinned() {
    let frame = Frame::Error {
        id: 7,
        code: ErrorCode::Busy,
        detail: "queue full".to_string(),
    };
    pin(&frame, "0e0907030a71756575652066756c6c");
}

#[test]
fn health_frame_is_pinned() {
    let frame = Frame::Health(WireHealth {
        services: 1,
        configured_workers: 4,
        alive_workers: 4,
        worker_panics: 0,
        respawns: 0,
        item_retries: 2,
        faults_injected: 0,
        pending_requests: 1,
        queued_items: 3,
        connections: 2,
    });
    pin(&frame, "0b0a01040400000200010302");
}

#[test]
fn done_frame_is_pinned() {
    let frame = Frame::Done {
        id: 7,
        successes: 16,
        stats: WireStats {
            bsat_calls: 123,
            steals: 1,
            retries: 0,
            degradations: 0,
            faults_injected: 0,
            queue_wait_micros: 250,
            wall_micros: 9001,
        },
    };
    pin(&frame, "0c0807107b01000000fa01a946");
}

/// A `Hello` carrying an unsupported version must still *parse* (the
/// version field is readable on every protocol revision — that is what
/// makes negotiation possible); rejecting it is the server's job and is
/// covered in `serve_end_to_end.rs`.
#[test]
fn future_version_hello_still_parses() {
    let frame = Frame::Hello { version: 99 };
    let mut decoder = Decoder::new();
    decoder.feed(&frame.encode());
    assert_eq!(
        decoder.next_frame().expect("parses").expect("complete"),
        frame
    );
}
