//! The wire-decoder corruption sweep: each case builds a valid frame
//! stream, corrupts it (truncation, bit flip, oversized length prefix,
//! or interleaved garbage), and feeds the bytes to [`unigen_net::Decoder`]
//! in random-sized slices. The decoder must never panic, never consume
//! more bytes than were fed, and report corruption only as a typed
//! [`unigen_net::FrameError`].
//!
//! The sweep is fully seeded. Knobs (also documented in the README):
//!
//! * `NET_FUZZ_CASES` — number of cases (default 100, CI runs the
//!   default; crank it locally for a deeper soak).
//! * `NET_FUZZ_START` — first case index (default 0). Rerunning with
//!   `NET_FUZZ_START=<index> NET_FUZZ_CASES=1` replays exactly the
//!   failing case.

use unigen_net::fuzz::{frame_corruption_case, Corruption};

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn corruption_sweep_never_panics_or_overreads() {
    let start = env_u64("NET_FUZZ_START", 0);
    let cases = env_u64("NET_FUZZ_CASES", 100);

    let mut by_kind = [0usize; 4];
    for index in start..start + cases {
        // Every decoder invariant violation inside the case surfaces as
        // `Err(description)`; a panic anywhere in the decode path is
        // caught here so the repro command still gets printed.
        let result = std::panic::catch_unwind(|| frame_corruption_case(index));
        let outcome = match result {
            Ok(outcome) => outcome,
            Err(_) => panic!(
                "case {index}: decoder panicked on corrupted input\n\
                 reproduce with: NET_FUZZ_START={index} NET_FUZZ_CASES=1 \
                 cargo test -p unigen-net --test fuzz_frames"
            ),
        };
        match outcome {
            Ok(corruption) => {
                by_kind[match corruption {
                    Corruption::Truncate => 0,
                    Corruption::BitFlip => 1,
                    Corruption::OversizedLength => 2,
                    Corruption::InterleavedGarbage => 3,
                }] += 1;
            }
            Err(violation) => panic!(
                "case {index}: {violation}\n\
                 reproduce with: NET_FUZZ_START={index} NET_FUZZ_CASES=1 \
                 cargo test -p unigen-net --test fuzz_frames"
            ),
        }
    }

    eprintln!(
        "net fuzz sweep: {cases} cases (truncate {}, bit-flip {}, oversized {}, garbage {})",
        by_kind[0], by_kind[1], by_kind[2], by_kind[3]
    );
    // The corruption selector is uniform; a sweep that never exercised
    // some mode means the case derivation regressed.
    if cases >= 64 {
        assert!(
            by_kind.iter().all(|&n| n > 0),
            "corruption sweep skipped a mode entirely: {by_kind:?}"
        );
    }
}
