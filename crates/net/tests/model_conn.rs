//! Model-checked protocol tests for the connection layer.
//!
//! These run the *real* `crates/net` connection code — [`Outbound`],
//! [`ConnRequests`], [`run_request`] — against a real `SamplerService`
//! under `conc`'s controlled scheduler, exploring distinct thread
//! interleavings up to a preemption bound. The three protocols pinned
//! here are exactly the ones the daemon's accept→dispatch→writer
//! pipeline depends on:
//!
//! 1. the write-buffer drain condvar never loses a wakeup (a blocked
//!    drainer always resumes once the event loop pops),
//! 2. the lock order across dispatch and writer is acyclic, and the
//!    connection waker is invoked *outside* the outbound lock,
//! 3. a client disconnect mid-stream releases the in-flight request
//!    entry and the service queue slot.
//!
//! Budgets come from `conc::model::Config::from_env()` so CI can widen
//! the search with `CONC_SCHEDULES` / `CONC_PREEMPTIONS`.

use std::sync::Arc;

use conc::atomic::AtomicU64;
use conc::model::{check, Config, Report};
use conc::sync::{Condvar, Mutex};
use rand::RngCore;

use unigen::{
    SampleOutcome, SampleRequest, SampleStats, SamplerService, ServiceConfig, WitnessSampler,
};
use unigen_net::conn::{run_request, ConnRequests, Outbound, RequestEnd, RequestJob};

/// A sampler that immediately returns the paper's `⊥` — the cheapest
/// possible work item, so schedules differ only in scheduler behavior.
#[derive(Clone)]
struct Stub;

impl WitnessSampler for Stub {
    fn sample(&mut self, _rng: &mut dyn RngCore) -> SampleOutcome {
        SampleOutcome::bottom(SampleStats::default())
    }
    fn name(&self) -> &'static str {
        "Stub"
    }
}

fn protocol_config() -> Config {
    Config::from_env()
}

/// The acceptance floor: either the bounded schedule tree was exhausted,
/// or the checker explored at least 1000 distinct schedules (clamped to
/// the configured budget so a deliberately tiny `CONC_SCHEDULES` still
/// runs).
fn assert_explored(cfg: &Config, report: &Report) {
    let floor = cfg.max_schedules.min(1000);
    assert!(
        report.complete || report.distinct_schedules >= floor,
        "exploration stopped early: {report}"
    );
}

/// The event loop's wake pipe, modeled as a counting condvar: the
/// connection waker raises it, the writer blocks on it. Spin-free, so
/// the controlled scheduler never hits its livelock guard.
struct WakeSignal {
    pending: Mutex<usize>,
    bell: Condvar,
}

impl WakeSignal {
    fn new() -> WakeSignal {
        WakeSignal {
            pending: Mutex::new(0),
            bell: Condvar::new(),
        }
    }

    /// The waker side (called by `Outbound` after every enqueue/close).
    fn raise(&self) {
        match self.pending.lock() {
            Ok(mut pending) => {
                *pending += 1;
                self.bell.notify_one();
            }
            Err(_) => panic!("wake mutex poisoned"),
        }
    }

    /// The writer side: block until at least one raise since the last
    /// acknowledge, then consume them all.
    fn await_raise(&self) {
        let mut pending = match self.pending.lock() {
            Ok(guard) => guard,
            Err(_) => panic!("wake mutex poisoned"),
        };
        while *pending == 0 {
            pending = match self.bell.wait(pending) {
                Ok(guard) => guard,
                Err(_) => panic!("wake mutex poisoned"),
            };
        }
        *pending = 0;
    }
}

fn job(id: u64, count: usize, master_seed: u64) -> RequestJob {
    RequestJob {
        id,
        request: SampleRequest::new(count, master_seed),
        fingerprint: 0xfeed,
        sampling_set: Vec::new(),
    }
}

/// Protocol 1: producers blocked on the `space` condvar always resume.
/// A tiny capacity forces every frame after the first to block until
/// the consumer pops; a lost wakeup would leave the producer parked
/// forever and surface as a deadlock/stall failure on that schedule.
#[test]
fn outbound_drain_condvar_never_loses_a_wakeup() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), || {
        let wake = Arc::new(WakeSignal::new());
        let outbound = {
            let wake = Arc::clone(&wake);
            Arc::new(Outbound::new(1, Box::new(move || wake.raise())))
        };
        let producer = {
            let outbound = Arc::clone(&outbound);
            conc::thread::spawn(move || {
                for payload in 0..3u8 {
                    outbound
                        .send(vec![payload; 4])
                        .expect("buffer never closes in this test");
                }
            })
        };
        let mut received = 0usize;
        while received < 3 {
            wake.await_raise();
            while let Some(frame) = outbound.pop() {
                assert_eq!(frame, vec![received as u8; 4], "frames drain in order");
                received += 1;
            }
        }
        producer.join().expect("producer exits cleanly");
        assert_eq!(outbound.queued_bytes(), 0);
    });
    assert!(report.failure.is_none(), "{report}");
    assert_explored(&cfg, &report);
}

/// Protocol 2: the full dispatch→writer pipeline (real service, real
/// outbound, real request table) holds its locks acyclically, and the
/// connection waker runs *outside* the outbound lock — the discipline
/// that keeps the event loop's wake mutex out of any cycle with
/// connection state.
#[test]
fn dispatch_writer_lock_order_is_acyclic_and_waker_runs_unlocked() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), || {
        let service = SamplerService::new(
            Stub,
            ServiceConfig::default()
                .with_workers(1)
                .with_queue_capacity(1),
        );
        let wake = Arc::new(WakeSignal::new());
        let outbound = {
            let wake = Arc::clone(&wake);
            // The production waker writes the event loop's wake pipe;
            // here it raises a condvar behind its own mutex. Any scheme
            // that invoked it while holding the outbound lock would
            // show up as a held→acquired edge below.
            Arc::new(Outbound::new(16, Box::new(move || wake.raise())))
        };
        let requests = ConnRequests::new();
        let cancel = requests.begin(1).expect("fresh id");
        let retries = Arc::new(AtomicU64::new(0));
        let drainer = {
            let outbound = Arc::clone(&outbound);
            let retries = Arc::clone(&retries);
            conc::thread::spawn(move || {
                run_request(&service, job(1, 2, 5), &outbound, &cancel, &retries, 4)
            })
        };
        // Writer role: the stream is StreamBegin + 2 chunks + Done —
        // drain exactly those four frames, waiting on the wake signal
        // between batches just like the event loop waits on its pipe.
        let mut frames = 0usize;
        while frames < 4 {
            wake.await_raise();
            while outbound.pop().is_some() {
                frames += 1;
            }
        }
        let end = drainer.join().expect("drainer exits cleanly");
        assert_eq!(end, RequestEnd::Completed { successes: 0 });
        assert_eq!(frames, 4, "the full stream reaches the writer");
        requests.finish(1);
    });
    assert!(report.failure.is_none(), "{report}");
    // No AB-BA hazard anywhere in the explored pipeline: a lock class
    // pair never appears in both nesting directions.
    for (held, acquired) in &report.lock_order_edges {
        assert!(
            !report
                .lock_order_edges
                .iter()
                .any(|(h, a)| h == acquired && a == held),
            "both nesting directions observed between {held} and {acquired}; \
             edges: {:?}",
            report.lock_order_edges
        );
    }
    // The waker-outside-the-lock discipline: no edge from connection
    // state into anything else while the outbound mutex is held.
    for (held, acquired) in &report.lock_order_edges {
        assert!(
            !held.contains("net/src/conn.rs"),
            "outbound lock held across another acquisition ({held} -> {acquired}); \
             the waker must run outside the lock"
        );
    }
    assert_explored(&cfg, &report);
}

/// Protocol 3: a client disconnect mid-stream (outbound closed, cancel
/// flags raised) ends the drainer promptly, clears the in-flight table,
/// and releases the service queue slot — a fresh blocking submit
/// completes on every explored schedule.
#[test]
fn disconnect_mid_stream_frees_the_service_slot() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), || {
        let service = Arc::new(SamplerService::new(
            Stub,
            ServiceConfig::default()
                .with_workers(1)
                .with_queue_capacity(1),
        ));
        let outbound = Arc::new(Outbound::new(1, Box::new(|| {})));
        let requests = Arc::new(ConnRequests::new());
        let cancel = requests.begin(1).expect("fresh id");
        let retries = Arc::new(AtomicU64::new(0));
        let drainer = {
            let service = Arc::clone(&service);
            let outbound = Arc::clone(&outbound);
            let requests = Arc::clone(&requests);
            let retries = Arc::clone(&retries);
            conc::thread::spawn(move || {
                let end = run_request(&service, job(1, 3, 9), &outbound, &cancel, &retries, 4);
                requests.finish(1);
                end
            })
        };
        // The "event loop" observes the hangup: close the buffer and
        // raise every cancel flag, exactly what `disconnect` does.
        outbound.close();
        requests.cancel_all();
        let end = drainer.join().expect("drainer exits cleanly");
        assert!(
            matches!(
                end,
                RequestEnd::Disconnected | RequestEnd::Cancelled | RequestEnd::Completed { .. }
            ),
            "unexpected request end: {end:?}"
        );
        assert_eq!(
            requests.active(),
            0,
            "disconnect clears the in-flight table"
        );
        // The released slot: a fresh blocking submit must complete (a
        // leaked slot would deadlock this schedule and fail the check).
        let response = service.submit(SampleRequest::new(1, 13)).wait();
        assert_eq!(response.outcomes.len(), 1);
    });
    assert!(report.failure.is_none(), "{report}");
    assert_explored(&cfg, &report);
}
