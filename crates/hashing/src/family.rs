//! Sampling from `H_xor(n, m, 3)` and turning draws into xor clauses.

use std::sync::Arc;

use rand::Rng;

use unigen_cnf::{Model, Var, XorClause};

/// The hash family `H_xor(n, m, 3)` over a fixed sampling set of size `n`.
///
/// The family is parameterised by the sampling set (the paper's `S`); the
/// output width `m` is chosen at each draw. Drawing from the family chooses
/// every coefficient `a_{i,j}` and the target cell `α` independently and
/// uniformly, which is exactly the construction shown 3-wise independent by
/// Gomes, Sabharwal and Selman (NIPS 2007) and reused by UniWit, PAWS and
/// UniGen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorHashFamily {
    /// Shared with every drawn [`XorHashFunction`] (and with clones of the
    /// family handed to parallel sampler workers), so neither a draw nor a
    /// worker clone copies the sampling set.
    sampling_set: Arc<[Var]>,
}

impl XorHashFamily {
    /// Creates the family over the given sampling set.
    ///
    /// # Panics
    ///
    /// Panics if the sampling set is empty.
    pub fn new(sampling_set: Vec<Var>) -> Self {
        assert!(
            !sampling_set.is_empty(),
            "the hash family needs a non-empty sampling set"
        );
        XorHashFamily {
            sampling_set: sampling_set.into(),
        }
    }

    /// Returns the sampling set the family hashes over.
    pub fn sampling_set(&self) -> &[Var] {
        &self.sampling_set
    }

    /// Returns `n`, the input width of the hash functions.
    pub fn input_width(&self) -> usize {
        self.sampling_set.len()
    }

    /// Draws a hash function with `m` output bits together with a random
    /// target cell `α ∈ {0,1}^m`, using `rng` as the source of randomness.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn sample<R: Rng + ?Sized>(&self, m: usize, rng: &mut R) -> XorHashFunction {
        assert!(m > 0, "a hash function needs at least one output bit");
        let rows = (0..m)
            .map(|_| HashRow {
                coefficients: self
                    .sampling_set
                    .iter()
                    .map(|_| rng.gen::<bool>())
                    .collect(),
                constant: rng.gen::<bool>(),
                target: rng.gen::<bool>(),
            })
            .collect();
        XorHashFunction {
            sampling_set: self.sampling_set.clone(),
            rows,
        }
    }
}

/// One row of a hash function: coefficients `a_{i,1..n}`, the constant
/// `a_{i,0}` and the target bit `α[i]`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct HashRow {
    coefficients: Vec<bool>,
    constant: bool,
    target: bool,
}

/// A concrete draw `(h, α)` from `H_xor(n, m, 3)`.
///
/// The pair is what UniGen conjoins to the formula: the constraint
/// `h(x_1 … x_n) = α`, i.e. one xor clause per output bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XorHashFunction {
    sampling_set: Arc<[Var]>,
    rows: Vec<HashRow>,
}

impl XorHashFunction {
    /// Returns `m`, the number of output bits (= number of xor clauses).
    pub fn num_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Returns the sampling set this hash function is defined over.
    pub fn sampling_set(&self) -> &[Var] {
        &self.sampling_set
    }

    /// Converts the constraint `h(y) = α` into xor clauses over the sampling
    /// set.
    ///
    /// Row `i` contributes the clause
    /// `⊕ {v_j : a_{i,j} = 1} = α[i] ⊕ a_{i,0}`.
    pub fn to_xor_clauses(&self) -> Vec<XorClause> {
        self.rows
            .iter()
            .map(|row| {
                let vars = self
                    .sampling_set
                    .iter()
                    .zip(&row.coefficients)
                    .filter(|(_, &coef)| coef)
                    .map(|(&v, _)| v);
                XorClause::new(vars, row.target ^ row.constant)
            })
            .collect()
    }

    /// Evaluates `h(y)` on a total model and reports whether `y` falls into
    /// the target cell `α`.
    ///
    /// # Panics
    ///
    /// Panics if the model does not cover the sampling set.
    pub fn maps_to_target(&self, model: &Model) -> bool {
        self.rows.iter().all(|row| {
            let parity = self
                .sampling_set
                .iter()
                .zip(&row.coefficients)
                .filter(|(_, &coef)| coef)
                .fold(row.constant, |acc, (&v, _)| acc ^ model.value(v));
            parity == row.target
        })
    }

    /// Evaluates the raw hash output `h(bits)` for an assignment of the
    /// sampling set given as a bit vector aligned with
    /// [`XorHashFunction::sampling_set`]. Used by the statistical
    /// independence tests, which work on abstract bit vectors rather than
    /// models.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len()` differs from the sampling-set size.
    pub fn hash_bits(&self, bits: &[bool]) -> Vec<bool> {
        assert_eq!(bits.len(), self.sampling_set.len(), "input width mismatch");
        self.rows
            .iter()
            .map(|row| {
                row.coefficients
                    .iter()
                    .zip(bits)
                    .filter(|(&coef, _)| coef)
                    .fold(row.constant, |acc, (_, &bit)| acc ^ bit)
            })
            .collect()
    }

    /// Returns the target cell `α`.
    pub fn target(&self) -> Vec<bool> {
        self.rows.iter().map(|r| r.target).collect()
    }

    /// Returns the lengths of the xor clauses this hash contributes (the
    /// "XOR len" column of the paper's tables).
    pub fn clause_lengths(&self) -> Vec<usize> {
        self.rows
            .iter()
            .map(|row| row.coefficients.iter().filter(|&&c| c).count())
            .collect()
    }

    /// Returns the average xor-clause length. The expectation is `n/2`, which
    /// is why hashing over a small independent support matters.
    pub fn average_clause_length(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        let total: usize = self.clause_lengths().iter().sum();
        total as f64 / self.rows.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampling(n: usize) -> Vec<Var> {
        (0..n).map(Var::new).collect()
    }

    #[test]
    #[should_panic]
    fn empty_sampling_set_is_rejected() {
        let _ = XorHashFamily::new(Vec::new());
    }

    #[test]
    #[should_panic]
    fn zero_output_bits_is_rejected() {
        let family = XorHashFamily::new(sampling(4));
        let mut rng = StdRng::seed_from_u64(0);
        let _ = family.sample(0, &mut rng);
    }

    #[test]
    fn sample_produces_requested_width() {
        let family = XorHashFamily::new(sampling(8));
        let mut rng = StdRng::seed_from_u64(1);
        let hash = family.sample(5, &mut rng);
        assert_eq!(hash.num_constraints(), 5);
        assert_eq!(hash.to_xor_clauses().len(), 5);
        assert_eq!(hash.target().len(), 5);
    }

    #[test]
    fn xor_clauses_agree_with_direct_evaluation() {
        let family = XorHashFamily::new(sampling(6));
        let mut rng = StdRng::seed_from_u64(2);
        let hash = family.sample(4, &mut rng);
        let clauses = hash.to_xor_clauses();
        for mask in 0u32..64 {
            let model = Model::new((0..6).map(|i| mask & (1 << i) != 0).collect());
            let via_clauses = clauses.iter().all(|c| c.evaluate(&model));
            assert_eq!(hash.maps_to_target(&model), via_clauses, "mask {mask:06b}");
        }
    }

    #[test]
    fn hash_bits_matches_maps_to_target() {
        let family = XorHashFamily::new(sampling(5));
        let mut rng = StdRng::seed_from_u64(3);
        let hash = family.sample(3, &mut rng);
        for mask in 0u32..32 {
            let bits: Vec<bool> = (0..5).map(|i| mask & (1 << i) != 0).collect();
            let model = Model::new(bits.clone());
            let in_cell = hash.hash_bits(&bits) == hash.target();
            assert_eq!(in_cell, hash.maps_to_target(&model));
        }
    }

    #[test]
    fn average_length_is_roughly_half_the_support() {
        let family = XorHashFamily::new(sampling(100));
        let mut rng = StdRng::seed_from_u64(4);
        let mut total = 0.0;
        let draws = 200;
        for _ in 0..draws {
            total += family.sample(10, &mut rng).average_clause_length();
        }
        let mean = total / draws as f64;
        assert!(
            (mean - 50.0).abs() < 3.0,
            "expected ≈50 variables per xor, measured {mean:.2}"
        );
    }

    #[test]
    fn hashing_over_subset_only_mentions_subset() {
        let subset: Vec<Var> = vec![Var::new(3), Var::new(17), Var::new(42)];
        let family = XorHashFamily::new(subset.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let hash = family.sample(2, &mut rng);
        for clause in hash.to_xor_clauses() {
            for v in clause.vars() {
                assert!(subset.contains(v));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let family = XorHashFamily::new(sampling(32));
        let mut rng_a = StdRng::seed_from_u64(10);
        let mut rng_b = StdRng::seed_from_u64(11);
        let a = family.sample(4, &mut rng_a);
        let b = family.sample(4, &mut rng_b);
        assert_ne!(a, b);
    }
}
