//! The 3-wise independent xor hash family `H_xor(n, m, 3)`.
//!
//! **Paper map:** implements the hash family defined in Section 2
//! (notation and preliminaries) of *Balancing Scalability and Uniformity in
//! SAT Witness Generator* (DAC 2014) — the same `H_xor` family introduced
//! with the CAV 2013 predecessor *A Scalable and Nearly Uniform Generator of
//! SAT Witnesses*. The observation that hashing only over the independent
//! support `S` shortens the xor constraints (and is what lets UniGen scale,
//! Section 3 of the DAC paper) is realised here by constructing the family
//! over an explicit sampling set.
//!
//! UniGen, UniWit and ApproxMC all partition the witness space by drawing a
//! random hash function `h : {0,1}^n → {0,1}^m` from the family
//!
//! ```text
//! h(y)[i] = a_{i,0} ⊕ (a_{i,1}·y[1]) ⊕ … ⊕ (a_{i,n}·y[n])     a_{i,j} ∈ {0,1}
//! ```
//!
//! and keeping only the witnesses in the cell `h^{-1}(α)` for a random
//! `α ∈ {0,1}^m`. Each output bit of the hash is an xor of a random subset of
//! the input variables plus a random constant, so conjoining `h(y) = α` to a
//! CNF formula adds `m` xor clauses whose **expected length is `n/2`** — the
//! reason UniGen insists on hashing over the (much smaller) independent
//! support rather than the full variable set.
//!
//! The crate provides:
//!
//! * [`XorHashFunction`] — one sampled hash function together with a target
//!   cell `α`, convertible to [`unigen_cnf::XorClause`]s over a sampling set,
//! * [`XorHashFamily`] — the distribution itself (`n`, i.e. the sampling set,
//!   is fixed; `m` is chosen per draw),
//! * [`independence`] — empirical estimators used by the property tests to
//!   confirm pairwise/3-wise uniformity of the family.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use unigen_cnf::Var;
//! use unigen_hashing::XorHashFamily;
//!
//! let sampling: Vec<Var> = (0..16).map(Var::new).collect();
//! let family = XorHashFamily::new(sampling);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let hash = family.sample(3, &mut rng);
//! assert_eq!(hash.num_constraints(), 3);
//! assert_eq!(hash.to_xor_clauses().len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod independence;

mod family;

pub use family::{XorHashFamily, XorHashFunction};
