//! Empirical checks of the uniformity and independence of `H_xor(n, m, 3)`.
//!
//! The theoretical analysis of UniGen (Lemmas 4–6 and Theorem 1 of the
//! paper) rests on the fact that `H_xor(n, m, 3)` is a 3-wise independent
//! family: for any three distinct inputs, their hash values are independent
//! and uniform over `{0,1}^m`. These estimators measure that property over
//! repeated draws so that the property-based tests can flag a buggy sampler
//! (for example, a missing constant term `a_{i,0}` breaks 2-wise
//! independence on the all-zero input).

use rand::Rng;

use crate::XorHashFamily;

/// Empirical probability that a fixed input lands in a fixed cell of width
/// `m`, estimated over `draws` independent hash draws.
///
/// For an r-wise independent family with r ≥ 1 the exact value is `2^-m`.
pub fn empirical_cell_probability<R: Rng + ?Sized>(
    family: &XorHashFamily,
    input: &[bool],
    m: usize,
    draws: usize,
    rng: &mut R,
) -> f64 {
    let mut hits = 0usize;
    for _ in 0..draws {
        let hash = family.sample(m, rng);
        if hash.hash_bits(input) == hash.target() {
            hits += 1;
        }
    }
    hits as f64 / draws as f64
}

/// Empirical probability that two *distinct* inputs land in the same fixed
/// cell simultaneously, estimated over `draws` draws.
///
/// For a 2-wise (or stronger) independent family the exact value is `2^-2m`.
///
/// # Panics
///
/// Panics if the two inputs are identical.
pub fn empirical_pair_collision_probability<R: Rng + ?Sized>(
    family: &XorHashFamily,
    input_a: &[bool],
    input_b: &[bool],
    m: usize,
    draws: usize,
    rng: &mut R,
) -> f64 {
    assert_ne!(input_a, input_b, "inputs must be distinct");
    let mut hits = 0usize;
    for _ in 0..draws {
        let hash = family.sample(m, rng);
        let target = hash.target();
        if hash.hash_bits(input_a) == target && hash.hash_bits(input_b) == target {
            hits += 1;
        }
    }
    hits as f64 / draws as f64
}

/// Empirical probability that three pairwise-distinct inputs land in the same
/// fixed cell simultaneously, estimated over `draws` draws.
///
/// For a 3-wise independent family the exact value is `2^-3m`.
///
/// # Panics
///
/// Panics if any two of the inputs are identical.
pub fn empirical_triple_collision_probability<R: Rng + ?Sized>(
    family: &XorHashFamily,
    inputs: [&[bool]; 3],
    m: usize,
    draws: usize,
    rng: &mut R,
) -> f64 {
    assert_ne!(inputs[0], inputs[1], "inputs must be pairwise distinct");
    assert_ne!(inputs[0], inputs[2], "inputs must be pairwise distinct");
    assert_ne!(inputs[1], inputs[2], "inputs must be pairwise distinct");
    let mut hits = 0usize;
    for _ in 0..draws {
        let hash = family.sample(m, rng);
        let target = hash.target();
        if inputs.iter().all(|input| hash.hash_bits(input) == target) {
            hits += 1;
        }
    }
    hits as f64 / draws as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use unigen_cnf::Var;

    fn family(n: usize) -> XorHashFamily {
        XorHashFamily::new((0..n).map(Var::new).collect())
    }

    fn bits(n: usize, mask: u32) -> Vec<bool> {
        (0..n).map(|i| mask & (1 << i) != 0).collect()
    }

    #[test]
    fn single_input_lands_uniformly() {
        let family = family(8);
        let mut rng = StdRng::seed_from_u64(100);
        // m = 2: expected probability 0.25.
        let p = empirical_cell_probability(&family, &bits(8, 0b1011_0010), 2, 20_000, &mut rng);
        assert!((p - 0.25).abs() < 0.02, "measured {p}");
        // The all-zero input exercises the constant term a_{i,0}.
        let p0 = empirical_cell_probability(&family, &bits(8, 0), 2, 20_000, &mut rng);
        assert!((p0 - 0.25).abs() < 0.02, "measured {p0}");
    }

    #[test]
    fn pairs_collide_with_squared_probability() {
        let family = family(8);
        let mut rng = StdRng::seed_from_u64(101);
        // m = 1: expected pair probability 0.25.
        let p = empirical_pair_collision_probability(
            &family,
            &bits(8, 3),
            &bits(8, 200),
            1,
            20_000,
            &mut rng,
        );
        assert!((p - 0.25).abs() < 0.02, "measured {p}");
    }

    #[test]
    fn triples_collide_with_cubed_probability() {
        let family = family(8);
        let mut rng = StdRng::seed_from_u64(102);
        // m = 1: expected triple probability 0.125.
        let p = empirical_triple_collision_probability(
            &family,
            [&bits(8, 1), &bits(8, 2), &bits(8, 255)],
            1,
            40_000,
            &mut rng,
        );
        assert!((p - 0.125).abs() < 0.02, "measured {p}");
    }

    #[test]
    #[should_panic]
    fn identical_inputs_are_rejected() {
        let family = family(4);
        let mut rng = StdRng::seed_from_u64(103);
        let a = bits(4, 5);
        let _ = empirical_pair_collision_probability(&family, &a, &a, 1, 10, &mut rng);
    }
}
