//! Model-checked protocol tests for the work-stealing sampler service.
//!
//! Every test in this file runs the *real* `SamplerService` — not a model of
//! it — under `conc`'s controlled scheduler, which explores distinct thread
//! interleavings up to a preemption bound with sleep-set pruning. A clean
//! report means every explored schedule upheld the protocol invariant; the
//! `*_race_is_found` test proves the exploration has teeth by re-introducing
//! a historical bug and asserting the checker rediscovers it.
//!
//! Budgets come from `conc::model::Config::from_env()` so CI can widen the
//! search with `CONC_SCHEDULES` / `CONC_PREEMPTIONS` without code changes.

use std::sync::Arc;

use conc::atomic::{AtomicUsize, Ordering};
use conc::model::{check, Config, FailureKind, Report};
use rand::RngCore;

use unigen::{
    OutcomeKind, SampleOutcome, SampleRequest, SampleStats, SamplerService, ServiceConfig,
    WitnessSampler,
};

/// A sampler that immediately returns the paper's `⊥` — the cheapest
/// possible work item, so schedules differ only in scheduler behavior.
#[derive(Clone)]
struct Stub;

impl WitnessSampler for Stub {
    fn sample(&mut self, _rng: &mut dyn RngCore) -> SampleOutcome {
        SampleOutcome::bottom(SampleStats::default())
    }
    fn name(&self) -> &'static str {
        "Stub"
    }
}

/// A sampler that panics on its first `fail_first` calls (counted across
/// clones — the counter lives behind an `Arc`), then succeeds forever.
#[derive(Clone)]
struct FlakyFirst {
    calls: Arc<AtomicUsize>,
    fail_first: usize,
}

impl FlakyFirst {
    fn new(fail_first: usize) -> Self {
        FlakyFirst {
            calls: Arc::new(AtomicUsize::new(0)),
            fail_first,
        }
    }
}

impl WitnessSampler for FlakyFirst {
    fn sample(&mut self, _rng: &mut dyn RngCore) -> SampleOutcome {
        if self.calls.fetch_add(1, Ordering::Relaxed) < self.fail_first {
            panic!("injected sampler fault");
        }
        SampleOutcome::bottom(SampleStats::default())
    }
    fn name(&self) -> &'static str {
        "FlakyFirst"
    }
}

/// A sampler that always panics — used to kill the whole pool.
#[derive(Clone)]
struct AlwaysPanics;

impl WitnessSampler for AlwaysPanics {
    fn sample(&mut self, _rng: &mut dyn RngCore) -> SampleOutcome {
        panic!("injected sampler fault");
    }
    fn name(&self) -> &'static str {
        "AlwaysPanics"
    }
}

fn protocol_config() -> Config {
    Config::from_env()
}

/// The acceptance floor: either the bounded schedule tree was exhausted, or
/// the checker explored at least 1000 distinct schedules (clamped to the
/// configured budget so a deliberately tiny `CONC_SCHEDULES` still runs).
fn assert_explored(cfg: &Config, report: &Report) {
    let floor = cfg.max_schedules.min(1000);
    assert!(
        report.complete || report.distinct_schedules >= floor,
        "exploration stopped early: {report}"
    );
}

/// Protocol: a caller that returns from `wait()` can immediately
/// `try_submit` a follow-up request — completion must release the queue
/// slot before the finished board becomes visible.
fn backpressure_round_trip_body() {
    let service = SamplerService::new(
        Stub,
        ServiceConfig::default()
            .with_workers(1)
            .with_queue_capacity(1),
    );
    let handle = service.submit(SampleRequest::new(1, 7));
    let response = handle.wait();
    assert_eq!(response.outcomes.len(), 1);
    // The documented backpressure idiom: completion observed, so the slot
    // must be free. This is exactly the invariant the pre-fix ordering
    // violated.
    service
        .try_submit(SampleRequest::new(1, 8))
        .expect("slot must be free once wait() has returned")
        .wait();
}

/// The fixed slot-release ordering upholds the backpressure protocol on
/// every explored schedule.
#[test]
fn backpressure_slot_accounting_is_clean() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), backpressure_round_trip_body);
    assert!(report.failure.is_none(), "{report}");
    assert_explored(&cfg, &report);
}

/// Re-introduce the historical bug (slot released *after* the finished
/// board is published) and assert the checker finds the spurious
/// `QueueFull` within budget — the checker has teeth.
#[test]
fn reintroduced_backpressure_race_is_found() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), || {
        let service = SamplerService::new(
            Stub,
            ServiceConfig::default()
                .with_workers(1)
                .with_queue_capacity(1),
        );
        service.debug_reintroduce_slot_release_race();
        let response = service.submit(SampleRequest::new(1, 7)).wait();
        assert_eq!(response.outcomes.len(), 1);
        service
            .try_submit(SampleRequest::new(1, 8))
            .expect("slot must be free once wait() has returned")
            .wait();
    });
    let failure = report
        .failure
        .as_ref()
        .unwrap_or_else(|| panic!("the re-introduced race went undetected: {report}"));
    assert!(
        matches!(&failure.kind, FailureKind::Panic(msg) if msg.contains("slot must be free")),
        "unexpected failure class: {report}"
    );
}

/// Satellite regression for the board → sched critical section: the only
/// place the two service locks nest is the completion path, and the
/// nesting is acyclic on every explored schedule. A `LockOrderCycle`
/// failure (or an empty edge set — meaning the nesting silently moved)
/// fails the test, pinning the shape of the PR 7 fix.
#[test]
fn board_sched_lock_nesting_is_acyclic_and_observed() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), backpressure_round_trip_body);
    assert!(report.failure.is_none(), "{report}");
    let service_edges: Vec<_> = report
        .lock_order_edges
        .iter()
        .filter(|(held, acquired)| held.contains("service.rs") && acquired.contains("service.rs"))
        .collect();
    assert!(
        !service_edges.is_empty(),
        "expected the board → sched nesting to be observed; edges: {:?}",
        report.lock_order_edges
    );
    // One nesting direction only: a lock class never appears on both sides
    // of a service-internal edge pair (that would be an AB-BA hazard even
    // if no single schedule completed the cycle).
    for (held, acquired) in &service_edges {
        assert!(
            !service_edges
                .iter()
                .any(|(h, a)| h == acquired && a == held),
            "both nesting directions observed between {held} and {acquired}"
        );
    }
}

/// Protocol: with two workers and a deliberately unbalanced deal, stealing
/// and completion never lose or duplicate an item — every index completes
/// exactly once on every explored schedule.
#[test]
fn steal_vs_completion_never_loses_items() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), || {
        let service = SamplerService::new(Stub, ServiceConfig::default().with_workers(2));
        let response = service.submit(SampleRequest::new(4, 11)).wait();
        assert_eq!(response.outcomes.len(), 4);
        assert!(
            response
                .outcomes
                .iter()
                .all(|o| o.kind == OutcomeKind::Bottom),
            "an item was dropped or faulted"
        );
    });
    assert!(report.failure.is_none(), "{report}");
    assert_explored(&cfg, &report);
}

/// Protocol: a worker panic respawns the sampler from the retained
/// prototype and retries the item, so the caller still sees the item's
/// real outcome — on every explored schedule.
#[test]
fn worker_panic_respawn_retries_item() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), || {
        let service = SamplerService::new(
            FlakyFirst::new(1),
            ServiceConfig::default()
                .with_workers(1)
                .with_max_respawns(1),
        );
        let response = service.submit(SampleRequest::new(1, 3)).wait();
        assert_eq!(response.outcomes[0].kind, OutcomeKind::Bottom);
        let health = service.health();
        assert_eq!(health.worker_panics, 1);
        assert_eq!(health.respawns, 1);
        assert_eq!(health.item_retries, 1);
        assert!(health.at_full_strength());
    });
    assert!(report.failure.is_none(), "{report}");
    assert_explored(&cfg, &report);
}

/// Protocol: dropping the service while a handle is still waiting drains
/// the admitted request first — the waiter always completes, on every
/// explored schedule.
#[test]
fn drop_while_handle_waiting_completes_request() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), || {
        let service = SamplerService::new(Stub, ServiceConfig::default().with_workers(1));
        let handle = service.submit(SampleRequest::new(1, 5));
        let waiter = conc::thread::spawn(move || handle.wait());
        drop(service);
        let response = waiter.join().expect("waiter must not panic");
        assert_eq!(response.outcomes.len(), 1);
    });
    assert!(report.failure.is_none(), "{report}");
    assert_explored(&cfg, &report);
}

/// Protocol: dropping a `ResponseHandle` mid-stream while workers still
/// post outcomes never deadlocks or panics — outcomes land on a board
/// whose only other owner is the worker side, and teardown drains
/// normally.
#[test]
fn handle_dropped_mid_stream_is_clean() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), || {
        let service = SamplerService::new(Stub, ServiceConfig::default().with_workers(1));
        let mut handle = service.submit(SampleRequest::new(2, 9));
        // Consume at most one outcome, then abandon the stream while the
        // worker may still be posting the second.
        let _ = handle.try_next();
        drop(handle);
        drop(service);
    });
    assert!(report.failure.is_none(), "{report}");
    assert_explored(&cfg, &report);
}

/// Protocol: when every worker exhausts its respawn budget the pool dies;
/// queued items complete as `Faulted` (no waiter hangs) and shutdown joins
/// the dead pool without panicking — on every explored schedule.
#[test]
fn shutdown_after_total_pool_death_is_clean() {
    let cfg = protocol_config();
    let report = check(cfg.clone(), || {
        let service = SamplerService::new(
            AlwaysPanics,
            ServiceConfig::default()
                .with_workers(1)
                .with_max_respawns(0),
        );
        let response = service.submit(SampleRequest::new(2, 13)).wait();
        assert!(
            response
                .outcomes
                .iter()
                .all(|o| o.kind == OutcomeKind::Faulted),
            "a dead pool must fault every admitted item"
        );
        assert_eq!(service.health().alive_workers, 0);
        service.shutdown();
    });
    assert!(report.failure.is_none(), "{report}");
    assert_explored(&cfg, &report);
}
