//! Deterministic parallel batch sampling — the "embarrassingly parallel"
//! scaling axis the paper points out ("the generation of different samples is
//! embarrassingly parallel") and UniGen2 later built a distributed system on.
//!
//! # Design
//!
//! [`ParallelSampler`] is the crate's original one-shot batch engine, kept
//! as a **thin compatibility wrapper** over the service API: since the
//! request/response redesign, [`ParallelSampler::sample_batch`] spins up a
//! single-request [`crate::SamplerService`] (persistent work-stealing pool,
//! one clone of the prepared prototype per worker) and waits for the
//! response. Code that issues more than one batch, wants streaming, or
//! needs backpressure should construct the service directly — the pool then
//! persists across requests instead of being rebuilt per call. The original
//! static contiguous partition survives as
//! [`ParallelSampler::sample_batch_static_chunks`], the ablation reference
//! the `bench_parallel` harness measures the deque scheduler against.
//!
//! Each worker clones the prepared prototype exactly once: the clone is
//! cheap because the heavyweight immutable state (sampling set, hash
//! family, enumerated witness lists) is shared through [`Arc`]s inside the
//! samplers, while the per-worker [`unigen_satsolver::Solver`] — the one
//! genuinely mutable component — is duplicated so workers never contend on
//! a lock. From then on each worker runs the ordinary incremental
//! per-sample loop on its own persistent solver.
//!
//! # Determinism contract
//!
//! Sample `i` of a batch draws **all** of its randomness from a dedicated
//! stream derived (via a SplitMix64 mix) from `(master_seed, i)`, exactly as
//! the serial reference implementation [`WitnessSampler::sample_batch`]
//! does. Because every sampler in this crate additionally picks its uniform
//! witness from a *canonically ordered* cell (see the module docs on
//! `sort_witnesses_canonically` in `sampler.rs`), the witness chosen at
//! position `i` is a pure function of the prepared state, `master_seed` and
//! `i` — it does not depend on which worker ran it, what that worker's
//! solver had learned from earlier samples, or how the scheduler interleaved
//! the threads. The result: `sample_batch(n, seed)` returns a
//! **bit-identical sequence of projected witnesses** (not merely the same
//! multiset) for any thread count, and that sequence equals the serial one.
//!
//! Two scope notes. First, the guarantee as stated covers each witness's
//! projection onto the sampling set — the part of a model on which
//! distinctness, uniformity and the Theorem 1 envelope are defined. The
//! *completion* of the remaining variables is pinned down too whenever the
//! sampling set functionally determines them (the independent-support
//! setting the sampler is meant for, and true of every bundled circuit
//! benchmark, where all internal signals are functions of the inputs); for
//! a sampling set that genuinely under-determines the formula, different
//! worker counts may complete the non-sampling variables differently, since
//! the completion comes from a worker solver's heuristic state. Second,
//! per-`BSAT` budgets must never fire (the default unlimited
//! [`unigen_satsolver::Budget`] trivially satisfies this): a wall-clock or
//! conflict cutoff triggers depending on accumulated per-worker solver
//! state, which is exactly the state workers do not share. A budget that
//! does fire no longer *silently* diverges, though — the affected samples
//! complete as typed [`crate::OutcomeKind::Interrupted`] outcomes, so the
//! guarantee narrows to the successfully completed indices instead of
//! voiding wholesale (and deterministically injected faults absorbed by the
//! recovery ladder keep the sequence bit-identical; see
//! [`crate::FaultPlan`]).
//!
//! # Example
//!
//! ```
//! use unigen::{ParallelSampler, UniGen, UniGenConfig, WitnessSampler};
//! use unigen_cnf::{CnfFormula, Lit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut f = CnfFormula::new(3);
//! f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2), Lit::from_dimacs(3)])?;
//! let prepared = UniGen::new(&f, UniGenConfig::default())?;
//!
//! let pool = ParallelSampler::new(prepared).with_jobs(2);
//! let batch = pool.sample_batch(16, 0xdac2014);
//! assert_eq!(batch.len(), 16);
//!
//! // Identical to the serial reference, witness for witness.
//! let serial = pool.prototype().clone().sample_batch(16, 0xdac2014);
//! assert_eq!(
//!     batch.iter().map(|o| &o.witness).collect::<Vec<_>>(),
//!     serial.iter().map(|o| &o.witness).collect::<Vec<_>>(),
//! );
//! # Ok(())
//! # }
//! ```

use std::num::NonZeroUsize;
use std::sync::Arc;

use crate::sampler::{SampleOutcome, WitnessSampler};
use crate::service::{SampleRequest, SamplerService, ServiceConfig};

/// A worker pool that runs a prepared [`WitnessSampler`] batch in parallel
/// with a deterministic, thread-count-independent result.
///
/// Sample `i` of a batch draws all of its randomness from a stream derived
/// from `(master_seed, i)` and every sampler picks from canonically ordered
/// cells, so the produced sequence of projected witnesses is bit-identical
/// at any worker count and equal to the serial
/// [`WitnessSampler::sample_batch`] (assuming per-`BSAT` budgets that never
/// fire; see the module documentation above for the full contract).
#[derive(Debug, Clone)]
pub struct ParallelSampler<S> {
    prototype: Arc<S>,
    jobs: usize,
}

impl<S: WitnessSampler + Clone + Send + Sync + 'static> ParallelSampler<S> {
    /// Wraps a prepared sampler, defaulting the worker count to the machine's
    /// available parallelism.
    pub fn new(prototype: S) -> Self {
        let jobs = conc::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        ParallelSampler {
            prototype: Arc::new(prototype),
            jobs,
        }
    }

    /// Returns a copy of this pool with an explicit worker count (clamped to
    /// at least one).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Returns the configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Returns the prepared prototype the workers clone from.
    pub fn prototype(&self) -> &S {
        &self.prototype
    }

    /// Produces `count` witnesses, sample `i` drawing from the dedicated
    /// stream derived from `(master_seed, i)`, fanned out over a
    /// single-request [`SamplerService`].
    ///
    /// Outcomes are returned in index order and the result is bit-identical
    /// to the serial [`WitnessSampler::sample_batch`] on a clone of the
    /// prototype, at any `jobs` value — the scheduler (work-stealing deques
    /// since the service redesign, a static partition before it) never
    /// affects the output, only the wall-clock time.
    pub fn sample_batch(&self, count: usize, master_seed: u64) -> Vec<SampleOutcome> {
        if count == 0 {
            return Vec::new();
        }
        let jobs = self.jobs.min(count);
        if jobs == 1 {
            // No pool: run the serial reference implementation on one clone.
            return self
                .prototype
                .as_ref()
                .clone()
                .sample_batch(count, master_seed);
        }
        let service = SamplerService::new(
            self.prototype.as_ref().clone(),
            ServiceConfig::default()
                .with_workers(jobs)
                .with_queue_capacity(1),
        );
        service
            .submit(SampleRequest::new(count, master_seed))
            .wait()
            .outcomes
    }

    /// The pre-service scheduler: splits the index range into one contiguous
    /// chunk per worker with **no work stealing**, on a per-call thread
    /// scope.
    ///
    /// Kept as the ablation reference for the `bench_parallel` harness —
    /// static chunking serialises a batch behind its most retry-heavy chunk,
    /// which is precisely what the deque scheduler absorbs. The output is
    /// bit-identical to [`ParallelSampler::sample_batch`] (both honour the
    /// per-index stream contract); only the scheduling differs.
    pub fn sample_batch_static_chunks(&self, count: usize, master_seed: u64) -> Vec<SampleOutcome> {
        if count == 0 {
            return Vec::new();
        }
        let jobs = self.jobs.min(count);
        if jobs == 1 {
            return self
                .prototype
                .as_ref()
                .clone()
                .sample_batch(count, master_seed);
        }

        let chunk = count.div_ceil(jobs);
        // Re-derive the worker count from the chunk size: with e.g.
        // count = 10 and jobs = 8, chunk = 2 covers the range with 5 workers
        // — the trailing 3 would otherwise each clone the full prepared
        // solver and spawn a thread only to return an empty vector.
        let jobs = count.div_ceil(chunk);
        let mut chunks: Vec<Vec<SampleOutcome>> = Vec::with_capacity(jobs);
        conc::thread::scope(|scope| {
            let handles: Vec<_> = (0..jobs)
                .map(|worker| {
                    // Clone-from-prepared happens on the spawning thread so
                    // the worker closure only needs `S: Send` to move its
                    // private sampler in; each worker owns its solver for the
                    // whole batch (rebuild-once, never per sample).
                    let mut sampler = self.prototype.as_ref().clone();
                    let start = worker * chunk;
                    let end = count.min(start + chunk);
                    scope.spawn(move || {
                        (start..end)
                            .map(|index| {
                                let mut rng = crate::sampler::stream_for_index(master_seed, index);
                                sampler.sample(&mut rng)
                            })
                            .collect::<Vec<SampleOutcome>>()
                    })
                })
                .collect();
            for handle in handles {
                chunks.push(handle.join().expect("a sampler worker panicked"));
            }
        });
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_cnf::{CnfFormula, Lit, Var, XorClause};

    use crate::config::UniGenConfig;
    use crate::unigen::UniGen;
    use crate::uniwit::{UniWit, UniWitConfig};

    fn formula_with_count(bits: usize, extra: usize) -> CnfFormula {
        let mut f = CnfFormula::new(bits + extra);
        for i in 0..extra {
            f.add_xor_clause(XorClause::new(
                [Var::new(i % bits), Var::new(bits + i)],
                false,
            ))
            .unwrap();
        }
        f.set_sampling_set((0..bits).map(Var::new)).unwrap();
        f
    }

    fn witnesses_of(outcomes: &[SampleOutcome]) -> Vec<Option<Vec<bool>>> {
        outcomes
            .iter()
            .map(|o| o.witness.as_ref().map(|w| w.values().to_vec()))
            .collect()
    }

    #[test]
    fn empty_batch_spawns_nothing() {
        let f = formula_with_count(4, 0);
        let pool = ParallelSampler::new(UniGen::new(&f, UniGenConfig::default()).unwrap());
        assert!(pool.sample_batch(0, 1).is_empty());
    }

    #[test]
    fn thread_count_does_not_change_the_witness_sequence() {
        // Hashed mode (2^10 witnesses), the interesting regime: every sample
        // runs the width scan on its worker's private solver.
        let f = formula_with_count(10, 3);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let serial = prepared.clone().sample_batch(12, 0xabc);
        for jobs in [1, 2, 3, 8] {
            let pool = ParallelSampler::new(prepared.clone()).with_jobs(jobs);
            let batch = pool.sample_batch(12, 0xabc);
            assert_eq!(
                witnesses_of(&batch),
                witnesses_of(&serial),
                "jobs = {jobs} diverged from the serial reference"
            );
        }
    }

    #[test]
    fn more_workers_than_samples_is_fine() {
        let f = formula_with_count(3, 1);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let pool = ParallelSampler::new(prepared.clone()).with_jobs(16);
        let batch = pool.sample_batch(5, 7);
        assert_eq!(batch.len(), 5);
        assert_eq!(
            witnesses_of(&batch),
            witnesses_of(&prepared.clone().sample_batch(5, 7))
        );
    }

    #[test]
    fn works_for_uniwit_too() {
        let mut f = CnfFormula::new(6);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        let prepared = UniWit::new(&f, UniWitConfig::default()).unwrap();
        let serial = prepared.clone().sample_batch(8, 99);
        let pool = ParallelSampler::new(prepared).with_jobs(4);
        assert_eq!(
            witnesses_of(&pool.sample_batch(8, 99)),
            witnesses_of(&serial)
        );
    }

    #[test]
    fn static_chunking_matches_the_service_scheduler() {
        let f = formula_with_count(9, 2);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let pool = ParallelSampler::new(prepared).with_jobs(3);
        assert_eq!(
            witnesses_of(&pool.sample_batch(10, 0xfeed)),
            witnesses_of(&pool.sample_batch_static_chunks(10, 0xfeed)),
            "the two schedulers must produce the same witness sequence"
        );
        assert!(pool.sample_batch_static_chunks(0, 1).is_empty());
    }

    #[test]
    fn jobs_clamps_to_one() {
        let f = formula_with_count(3, 0);
        let pool =
            ParallelSampler::new(UniGen::new(&f, UniGenConfig::default()).unwrap()).with_jobs(0);
        assert_eq!(pool.jobs(), 1);
        assert_eq!(pool.sample_batch(3, 0).len(), 3);
    }
}
