//! One entry point for every sampler family: [`SamplerSpec`],
//! [`SamplerBuilder`] and the type-erased [`AnySampler`].
//!
//! The crate historically exposed four ad-hoc constructor/config pairs
//! (`UniGen::new` + [`UniGenConfig`], `UniWit::new` + [`UniWitConfig`], …).
//! The builder collapses them behind one coherent, forward-compatible
//! surface:
//!
//! ```
//! use unigen::{SamplerBuilder, WitnessSampler};
//! use unigen_cnf::{CnfFormula, Lit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut f = CnfFormula::new(3);
//! f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2), Lit::from_dimacs(3)])?;
//!
//! let mut sampler = SamplerBuilder::unigen(&f).epsilon(6.0).seed(42).build()?;
//! let outcome = sampler.sample_batch(4, 0xdac2014);
//! assert_eq!(outcome.len(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! Errors are typed by phase: a misapplied option or a failed preparation is
//! a *prepare-time* [`BuildError`] from [`SamplerBuilder::build`]; transient
//! queue rejections are *request-time* [`crate::TrySubmitError`]s from the
//! service (see `error.rs` for the taxonomy). Options that a family does not
//! have — `epsilon` on UniWit, `sampling_set` on the full-support hashers —
//! are rejected rather than silently ignored, so a spec always means what it
//! says.

use std::sync::Arc;

use unigen_cnf::{CnfFormula, Var};
use unigen_counting::ApproxMcConfig;
use unigen_satsolver::Budget;

use crate::config::UniGenConfig;
use crate::error::BuildError;
use crate::fault::FaultPlan;
use crate::sampler::{SampleOutcome, WitnessSampler};
use crate::service::{SamplerService, ServiceConfig};
use crate::unigen::UniGen;
use crate::uniwit::{UniWit, UniWitConfig};
use crate::us::UniformSampler;
use crate::xorsample::{XorSamplePrime, XorSamplePrimeConfig};

/// Which sampler family a [`SamplerBuilder`] constructs, together with that
/// family's configuration.
///
/// A spec is a plain value: it can be stored, compared, serialised by a
/// front end, and handed to [`SamplerBuilder::from_spec`] — the
/// forward-compatible core of the redesigned API (new families become new
/// variants, not new constructors).
///
/// A spec carries the *family and its configuration* only. An explicit
/// [`SamplerBuilder::sampling_set`] override is deliberately **builder**
/// state, not spec state: the set is a list of variable indices into one
/// concrete formula, so it would not survive being stored apart from that
/// formula. Callers that round-trip a spec through
/// [`SamplerBuilder::from_spec`] must re-apply their sampling-set override.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SamplerSpec {
    /// UniGen (DAC 2014): almost-uniform, hashing over the sampling set.
    UniGen(UniGenConfig),
    /// UniWit (CAV 2013): near-uniform, hashing over the full support.
    UniWit(UniWitConfig),
    /// XORSample′ (NIPS 2007): near-uniform with a user-supplied hash width.
    XorSamplePrime(XorSamplePrimeConfig),
    /// US: the ideal uniform sampler (exact count + materialised witnesses).
    Uniform,
}

impl SamplerSpec {
    /// The family's human-readable name ("UniGen", "UniWit", …).
    pub fn name(&self) -> &'static str {
        match self {
            SamplerSpec::UniGen(_) => "UniGen",
            SamplerSpec::UniWit(_) => "UniWit",
            SamplerSpec::XorSamplePrime(_) => "XORSample'",
            SamplerSpec::Uniform => "US",
        }
    }
}

/// Builds any sampler in the crate from one entry point.
///
/// Construct with the family selector ([`SamplerBuilder::unigen`],
/// [`SamplerBuilder::uniwit`], [`SamplerBuilder::xorsample`],
/// [`SamplerBuilder::uniform`]) or from a stored [`SamplerSpec`]
/// ([`SamplerBuilder::from_spec`]), chain the options the family supports,
/// and finish with [`SamplerBuilder::build`] (a prepared [`AnySampler`]) or
/// [`SamplerBuilder::into_service`] (a running [`SamplerService`]).
///
/// Setting an option the selected family does not have is remembered and
/// reported as [`BuildError::UnsupportedOption`] at build time — typed,
/// rather than silently dropped.
#[derive(Debug, Clone)]
pub struct SamplerBuilder<'f> {
    formula: &'f CnfFormula,
    spec: SamplerSpec,
    sampling_set: Option<Vec<Var>>,
    fault_plan: Option<Arc<FaultPlan>>,
    misapplied: Option<&'static str>,
}

impl<'f> SamplerBuilder<'f> {
    /// Starts a UniGen spec with the paper's default configuration.
    pub fn unigen(formula: &'f CnfFormula) -> Self {
        Self::from_spec(formula, SamplerSpec::UniGen(UniGenConfig::default()))
    }

    /// Starts a UniWit spec with the default configuration.
    pub fn uniwit(formula: &'f CnfFormula) -> Self {
        Self::from_spec(formula, SamplerSpec::UniWit(UniWitConfig::default()))
    }

    /// Starts an XORSample′ spec with the default configuration.
    pub fn xorsample(formula: &'f CnfFormula) -> Self {
        Self::from_spec(
            formula,
            SamplerSpec::XorSamplePrime(XorSamplePrimeConfig::default()),
        )
    }

    /// Starts a US (ideal uniform sampler) spec; the build materialises the
    /// witness list so the sampler can return concrete models.
    pub fn uniform(formula: &'f CnfFormula) -> Self {
        Self::from_spec(formula, SamplerSpec::Uniform)
    }

    /// Starts from a stored [`SamplerSpec`].
    pub fn from_spec(formula: &'f CnfFormula, spec: SamplerSpec) -> Self {
        SamplerBuilder {
            formula,
            spec,
            sampling_set: None,
            fault_plan: None,
            misapplied: None,
        }
    }

    /// Returns the spec as configured so far.
    pub fn spec(&self) -> &SamplerSpec {
        &self.spec
    }

    /// Records the first option applied to a family that does not have it;
    /// [`SamplerBuilder::build`] turns it into a typed error.
    fn misapply(mut self, option: &'static str) -> Self {
        self.misapplied.get_or_insert(option);
        self
    }

    /// Tolerance ε (> 1.71). **UniGen only.**
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        match &mut self.spec {
            SamplerSpec::UniGen(config) => {
                config.epsilon = epsilon;
                self
            }
            _ => self.misapply("epsilon"),
        }
    }

    /// Seed for the preparation phase's random choices. **UniGen only** (the
    /// other families have no randomised preparation; per-sample randomness
    /// always comes from the request's RNG streams).
    pub fn seed(mut self, seed: u64) -> Self {
        match &mut self.spec {
            SamplerSpec::UniGen(config) => {
                config.seed = seed;
                self
            }
            _ => self.misapply("seed"),
        }
    }

    /// Budget for each underlying solver call. Supported by every hashing
    /// family (UniGen, UniWit, XORSample′); **not** by US, whose preparation
    /// is an exact count.
    pub fn bsat_budget(mut self, budget: Budget) -> Self {
        match &mut self.spec {
            SamplerSpec::UniGen(config) => {
                config.bsat_budget = budget;
                self
            }
            SamplerSpec::UniWit(config) => {
                config.bsat_budget = budget;
                self
            }
            SamplerSpec::XorSamplePrime(config) => {
                config.bsat_budget = budget;
                self
            }
            SamplerSpec::Uniform => self.misapply("bsat_budget"),
        }
    }

    /// Retries for a budget-exhausted `BSAT` call at the same hash width.
    /// **UniGen only.**
    pub fn bsat_retries(mut self, retries: usize) -> Self {
        match &mut self.spec {
            SamplerSpec::UniGen(config) => {
                config.bsat_retries = retries;
                self
            }
            _ => self.misapply("bsat_retries"),
        }
    }

    /// Certified enumeration: log a DRAT-style proof of every cell
    /// enumeration and verify it online with the independent `unigen-cert`
    /// checker (see [`UniGenConfig::certify`]). **UniGen only** (the other
    /// families' solvers run without proof sinks).
    pub fn certify(mut self, certify: bool) -> Self {
        match &mut self.spec {
            SamplerSpec::UniGen(config) => {
                config.certify = certify;
                self
            }
            _ => self.misapply("certify"),
        }
    }

    /// Configuration of the approximate model counter used during
    /// preparation. **UniGen only.**
    pub fn approxmc(mut self, approxmc: ApproxMcConfig) -> Self {
        match &mut self.spec {
            SamplerSpec::UniGen(config) => {
                config.approxmc = approxmc;
                self
            }
            _ => self.misapply("approxmc"),
        }
    }

    /// Largest cell size accepted during the per-sample width search.
    /// **UniWit only.**
    pub fn pivot(mut self, pivot: u64) -> Self {
        match &mut self.spec {
            SamplerSpec::UniWit(config) => {
                config.pivot = pivot;
                self
            }
            _ => self.misapply("pivot"),
        }
    }

    /// Cap on the number of hash widths tried per sample. **UniWit only.**
    pub fn max_width(mut self, max_width: usize) -> Self {
        match &mut self.spec {
            SamplerSpec::UniWit(config) => {
                config.max_width = Some(max_width);
                self
            }
            _ => self.misapply("max_width"),
        }
    }

    /// Number of xor constraints to add (the user-supplied hash width).
    /// **XORSample′ only.**
    pub fn num_constraints(mut self, num_constraints: usize) -> Self {
        match &mut self.spec {
            SamplerSpec::XorSamplePrime(config) => {
                config.num_constraints = num_constraints;
                self
            }
            _ => self.misapply("num_constraints"),
        }
    }

    /// Upper bound on the witnesses enumerated from a surviving cell.
    /// **XORSample′ only.**
    pub fn cell_cap(mut self, cell_cap: usize) -> Self {
        match &mut self.spec {
            SamplerSpec::XorSamplePrime(config) => {
                config.cell_cap = cell_cap;
                self
            }
            _ => self.misapply("cell_cap"),
        }
    }

    /// Explicit sampling set `S`, overriding the formula's declared one.
    /// Supported by UniGen (hashes over `S`) and US (materialises projected
    /// witnesses); **not** by UniWit or XORSample′, which by definition hash
    /// over the full support — the structural difference the paper's
    /// comparison isolates.
    ///
    /// The override is builder state, not part of the [`SamplerSpec`]
    /// (see the spec's type docs): re-apply it after
    /// [`SamplerBuilder::from_spec`].
    pub fn sampling_set(mut self, sampling_set: impl IntoIterator<Item = Var>) -> Self {
        match &self.spec {
            SamplerSpec::UniGen(_) | SamplerSpec::Uniform => {
                self.sampling_set = Some(sampling_set.into_iter().collect());
                self
            }
            _ => self.misapply("sampling_set"),
        }
    }

    /// Installs a chaos-testing [`FaultPlan`]: the plan's solver-level fault
    /// hook is wired into the prepared sampler, and
    /// [`SamplerBuilder::into_service`] threads the same plan into the
    /// service so its worker-panic primitive and health counters line up
    /// with the solver-level injections. **UniGen only** (the other
    /// families' recovery ladder lives in UniGen; see the crate's
    /// robustness docs).
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        match &self.spec {
            SamplerSpec::UniGen(_) => {
                self.fault_plan = Some(plan);
                self
            }
            _ => self.misapply("fault_plan"),
        }
    }

    /// Runs the selected family's preparation phase and returns the prepared
    /// sampler.
    ///
    /// # Errors
    ///
    /// * [`BuildError::UnsupportedOption`] if an option was applied to a
    ///   family that does not have it,
    /// * [`BuildError::Prepare`] wrapping the family's
    ///   [`crate::SamplerError`] if preparation fails.
    pub fn build(self) -> Result<AnySampler, BuildError> {
        if let Some(option) = self.misapplied {
            return Err(BuildError::UnsupportedOption {
                option,
                sampler: self.spec.name(),
            });
        }
        Ok(match self.spec {
            SamplerSpec::UniGen(config) => {
                let mut sampler = match self.sampling_set {
                    Some(sampling_set) => {
                        UniGen::with_sampling_set(self.formula, &sampling_set, config)?
                    }
                    None => UniGen::new(self.formula, config)?,
                };
                if let Some(plan) = self.fault_plan {
                    sampler.install_fault_plan(plan);
                }
                AnySampler::UniGen(sampler)
            }
            SamplerSpec::UniWit(config) => AnySampler::UniWit(UniWit::new(self.formula, config)?),
            SamplerSpec::XorSamplePrime(config) => {
                AnySampler::XorSamplePrime(XorSamplePrime::new(self.formula, config)?)
            }
            SamplerSpec::Uniform => {
                let sampling_set = self
                    .sampling_set
                    .unwrap_or_else(|| self.formula.sampling_set_or_all());
                AnySampler::Uniform(UniformSampler::with_witnesses(self.formula, &sampling_set)?)
            }
        })
    }

    /// Builds the sampler and wraps it in a running [`SamplerService`] — the
    /// one-call path from a formula to a request/response sampling service.
    /// A [`SamplerBuilder::fault_plan`] is threaded into the service too, so
    /// solver-level and worker-level chaos share one schedule and one set of
    /// health counters.
    ///
    /// # Errors
    ///
    /// The [`SamplerBuilder::build`] errors, plus
    /// [`BuildError::Service`] if `config` is invalid (for example
    /// [`ServiceConfig::workers`] of zero).
    pub fn into_service(self, config: ServiceConfig) -> Result<SamplerService, BuildError> {
        let plan = self.fault_plan.clone();
        let sampler = self.build()?;
        Ok(SamplerService::try_with_fault_plan(sampler, config, plan)?)
    }
}

/// A prepared sampler of any family, as produced by
/// [`SamplerBuilder::build`].
///
/// `AnySampler` implements [`WitnessSampler`] by delegation, is `Clone +
/// Send + Sync` (the heavyweight prepared state is `Arc`-shared, only the
/// incremental solver is duplicated), and therefore drops into
/// [`SamplerService`], [`crate::ParallelSampler`], or any generic harness
/// exactly like the concrete types do.
#[derive(Debug, Clone)]
#[non_exhaustive]
#[allow(clippy::large_enum_variant)] // lint: prepared samplers are built once and long-lived; boxing the UniGen variant would buy nothing but an extra indirection on every delegated call
pub enum AnySampler {
    /// A prepared [`UniGen`].
    UniGen(UniGen),
    /// A prepared [`UniWit`].
    UniWit(UniWit),
    /// A prepared [`XorSamplePrime`].
    XorSamplePrime(XorSamplePrime),
    /// A prepared [`UniformSampler`] with materialised witnesses.
    Uniform(UniformSampler),
}

impl AnySampler {
    /// Returns the inner [`UniGen`], if this is one (for access to
    /// UniGen-specific introspection such as
    /// [`UniGen::prepared_mode`]).
    pub fn as_unigen(&self) -> Option<&UniGen> {
        match self {
            AnySampler::UniGen(sampler) => Some(sampler),
            _ => None,
        }
    }

    /// Returns the inner [`UniWit`], if this is one.
    pub fn as_uniwit(&self) -> Option<&UniWit> {
        match self {
            AnySampler::UniWit(sampler) => Some(sampler),
            _ => None,
        }
    }
}

impl WitnessSampler for AnySampler {
    fn sample(&mut self, rng: &mut dyn rand::RngCore) -> SampleOutcome {
        match self {
            AnySampler::UniGen(sampler) => sampler.sample(rng),
            AnySampler::UniWit(sampler) => sampler.sample(rng),
            AnySampler::XorSamplePrime(sampler) => sampler.sample(rng),
            AnySampler::Uniform(sampler) => sampler.sample(rng),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            AnySampler::UniGen(sampler) => sampler.name(),
            AnySampler::UniWit(sampler) => sampler.name(),
            AnySampler::XorSamplePrime(sampler) => sampler.name(),
            AnySampler::Uniform(sampler) => sampler.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_cnf::{Lit, XorClause};

    use crate::error::SamplerError;

    fn or3() -> CnfFormula {
        let mut f = CnfFormula::new(3);
        f.add_clause([
            Lit::from_dimacs(1),
            Lit::from_dimacs(2),
            Lit::from_dimacs(3),
        ])
        .unwrap();
        f
    }

    #[test]
    fn builds_every_family_from_one_entry_point() {
        let f = or3();
        let mut names = Vec::new();
        for builder in [
            SamplerBuilder::unigen(&f),
            SamplerBuilder::uniwit(&f),
            SamplerBuilder::xorsample(&f).num_constraints(1),
            SamplerBuilder::uniform(&f),
        ] {
            let sampler = builder.build().unwrap();
            names.push(sampler.name());
        }
        assert_eq!(names, vec!["UniGen", "UniWit", "XORSample'", "US"]);
    }

    #[test]
    fn options_reach_the_family_configs() {
        let f = or3();
        let builder = SamplerBuilder::unigen(&f)
            .epsilon(8.0)
            .seed(42)
            .bsat_retries(5)
            .certify(true);
        match builder.spec() {
            SamplerSpec::UniGen(config) => {
                assert_eq!(config.epsilon, 8.0);
                assert_eq!(config.seed, 42);
                assert_eq!(config.bsat_retries, 5);
                assert!(config.certify);
            }
            other => panic!("expected a UniGen spec, got {other:?}"),
        }
        let builder = SamplerBuilder::uniwit(&f).pivot(10).max_width(2);
        match builder.spec() {
            SamplerSpec::UniWit(config) => {
                assert_eq!(config.pivot, 10);
                assert_eq!(config.max_width, Some(2));
            }
            other => panic!("expected a UniWit spec, got {other:?}"),
        }
    }

    #[test]
    fn misapplied_options_are_typed_build_errors() {
        let f = or3();
        // epsilon is UniGen-only.
        let err = SamplerBuilder::uniwit(&f).epsilon(6.0).build().unwrap_err();
        assert_eq!(
            err,
            BuildError::UnsupportedOption {
                option: "epsilon",
                sampler: "UniWit"
            }
        );
        // Certified enumeration lives in UniGen's solver wiring only.
        let err = SamplerBuilder::uniform(&f)
            .certify(true)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::UnsupportedOption {
                option: "certify",
                ..
            }
        ));
        // UniWit hashes over the full support by definition.
        let err = SamplerBuilder::uniwit(&f)
            .sampling_set([Var::new(0)])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::UnsupportedOption {
                option: "sampling_set",
                ..
            }
        ));
        // The first misapplied option wins, even with later valid setters.
        let err = SamplerBuilder::xorsample(&f)
            .pivot(3)
            .num_constraints(2)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::UnsupportedOption {
                option: "pivot",
                ..
            }
        ));
        assert!(err.to_string().contains("pivot"));
    }

    #[test]
    fn preparation_failures_are_typed_prepare_errors() {
        let mut f = CnfFormula::new(1);
        f.add_clause([Lit::from_dimacs(1)]).unwrap();
        f.add_clause([Lit::from_dimacs(-1)]).unwrap();
        let err = SamplerBuilder::unigen(&f).build().unwrap_err();
        assert_eq!(err, BuildError::Prepare(SamplerError::Unsatisfiable));
        let err = SamplerBuilder::unigen(&or3())
            .epsilon(1.0)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            BuildError::Prepare(SamplerError::EpsilonTooSmall { .. })
        ));
    }

    #[test]
    fn explicit_sampling_set_reaches_unigen_and_us() {
        let mut f = CnfFormula::new(3);
        f.add_xor_clause(XorClause::new([Var::new(0), Var::new(2)], false))
            .unwrap();
        let sampler = SamplerBuilder::unigen(&f)
            .sampling_set([Var::new(0), Var::new(1)])
            .build()
            .unwrap();
        assert_eq!(
            sampler.as_unigen().unwrap().sampling_set(),
            &[Var::new(0), Var::new(1)]
        );
        let sampler = SamplerBuilder::uniform(&f)
            .sampling_set([Var::new(0), Var::new(1)])
            .build()
            .unwrap();
        assert!(matches!(sampler, AnySampler::Uniform(_)));
    }

    #[test]
    fn spec_round_trips_through_from_spec() {
        let f = or3();
        let spec = SamplerSpec::XorSamplePrime(XorSamplePrimeConfig {
            num_constraints: 1,
            ..Default::default()
        });
        let sampler = SamplerBuilder::from_spec(&f, spec.clone()).build().unwrap();
        assert_eq!(sampler.name(), spec.name());
    }

    #[test]
    fn fault_plan_is_unigen_only_and_zero_workers_is_a_typed_service_error() {
        use crate::error::ServiceConfigError;
        let f = or3();
        let err = SamplerBuilder::uniwit(&f)
            .fault_plan(Arc::new(FaultPlan::seeded(1)))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            BuildError::UnsupportedOption {
                option: "fault_plan",
                sampler: "UniWit"
            }
        );
        let err = SamplerBuilder::unigen(&f)
            .into_service(ServiceConfig::default().with_workers(0))
            .unwrap_err();
        assert_eq!(err, BuildError::Service(ServiceConfigError::ZeroWorkers));
    }

    #[test]
    fn into_service_threads_the_fault_plan_through() {
        use crate::service::SampleRequest;
        // Wide enough (~2^10 · 0.75 witnesses) that UniGen prepares in
        // hashed mode and actually issues BSAT calls the plan can fail —
        // the tiny `or3` formula would be enumerated outright.
        let mut f = CnfFormula::new(10);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        let plan = Arc::new(FaultPlan::seeded(7).fail_nth_bsat(1));
        let service = SamplerBuilder::unigen(&f)
            .fault_plan(Arc::clone(&plan))
            .into_service(ServiceConfig::default().with_workers(1))
            .unwrap();
        let response = service.submit(SampleRequest::new(4, 3)).wait();
        assert_eq!(response.outcomes.len(), 4);
        // The solver-level fault fired and was absorbed by the recovery
        // ladder; the service health surfaces it because both layers share
        // the one plan.
        assert_eq!(plan.faults_injected(), 1);
        assert_eq!(service.health().faults_injected, 1);
        assert!(response.aggregate_stats.retries >= 1);
    }

    #[test]
    fn into_service_serves_the_built_sampler() {
        use crate::service::SampleRequest;
        let f = or3();
        let service = SamplerBuilder::unigen(&f)
            .into_service(ServiceConfig::default().with_workers(2))
            .unwrap();
        let response = service.submit(SampleRequest::new(5, 9)).wait();
        assert_eq!(response.outcomes.len(), 5);
        assert!(response.successes() > 0);
    }
}
