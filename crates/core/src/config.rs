//! Sampler configuration.
//!
//! Since the service-API redesign the preferred construction surface is
//! [`crate::SamplerBuilder`], which wraps this config (and the other
//! families') behind one typed entry point —
//! `SamplerBuilder::unigen(&f).epsilon(6.0).build()?`. The config structs
//! remain public as the value types a [`crate::SamplerSpec`] carries and
//! for callers that prefer the original constructors.

use unigen_counting::ApproxMcConfig;
use unigen_satsolver::Budget;

/// Configuration of [`crate::UniGen`].
///
/// The defaults mirror the paper's experimental setup scaled to a laptop:
/// tolerance ε = 6 (the value used for every row of Tables 1 and 2),
/// `ApproxMC(F, 0.8, 0.8)` for the one-off count, and a generous per-`BSAT`
/// budget standing in for the 2 500-second per-call timeout.
#[derive(Debug, Clone, PartialEq)]
pub struct UniGenConfig {
    /// Tolerance ε (> 1.71). Smaller values give stronger uniformity but
    /// larger cells and therefore more expensive `BSAT` calls.
    pub epsilon: f64,
    /// Seed for every random choice the sampler's *preparation* makes (the
    /// per-sample randomness comes from the RNG passed to `sample`).
    pub seed: u64,
    /// Budget for each underlying solver call.
    pub bsat_budget: Budget,
    /// Configuration of the approximate model counter used in line 9.
    pub approxmc: ApproxMcConfig,
    /// How many times a failed (budget-exhausted) `BSAT` call on line 16 is
    /// retried with fresh randomness without advancing the hash width — the
    /// paper repeats lines 14–16 when a call times out.
    pub bsat_retries: usize,
    /// Certified enumeration: when `true` the persistent solver logs a
    /// DRAT-style proof of every cell enumeration and an independent
    /// [`unigen_cert`] checker verifies it online. A cell whose proof fails
    /// to check is reported as [`crate::OutcomeKind::Faulted`] rather than
    /// trusted; a failure during preparation surfaces as
    /// [`crate::SamplerError::CertificationFailed`]. Off by default — the
    /// solver's proof hooks are a single pointer test when disabled, but
    /// logging and checking cost real time and memory when enabled.
    pub certify: bool,
}

impl Default for UniGenConfig {
    fn default() -> Self {
        UniGenConfig {
            epsilon: 6.0,
            seed: 0xdac2_0140,
            bsat_budget: Budget::new(),
            approxmc: ApproxMcConfig::default(),
            bsat_retries: 2,
            certify: false,
        }
    }
}

impl UniGenConfig {
    /// Returns a copy of this configuration with a different tolerance.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Returns a copy of this configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy of this configuration with a per-call solver budget.
    pub fn with_bsat_budget(mut self, budget: Budget) -> Self {
        self.bsat_budget = budget;
        self
    }

    /// Returns a copy of this configuration with certified enumeration
    /// switched on or off (see [`UniGenConfig::certify`]).
    pub fn with_certify(mut self, certify: bool) -> Self {
        self.certify = certify;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let config = UniGenConfig::default();
        assert_eq!(config.epsilon, 6.0);
        assert!(config.bsat_budget.is_unlimited());
        assert_eq!(config.approxmc.tolerance, 0.8);
        assert_eq!(config.approxmc.confidence, 0.8);
        assert!(!config.certify);
    }

    #[test]
    fn builder_style_setters() {
        let config = UniGenConfig::default()
            .with_epsilon(8.0)
            .with_seed(42)
            .with_bsat_budget(Budget::new().with_conflict_limit(10))
            .with_certify(true);
        assert_eq!(config.epsilon, 8.0);
        assert_eq!(config.seed, 42);
        assert_eq!(config.bsat_budget.conflict_limit(), Some(10));
        assert!(config.certify);
    }
}
