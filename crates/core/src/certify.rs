//! Online certification of the sampler's solver reasoning.
//!
//! When [`crate::UniGenConfig::certify`] is on, the persistent solver runs
//! with a DRAT-style proof sink installed (see `unigen_satsolver::proof`),
//! and every cell enumeration is re-checked *as it happens* by an
//! independent [`unigen_cert::Checker`] — the offline checker crate that
//! shares no code with the solver. A cell whose proof fails to check is
//! reported as [`crate::OutcomeKind::Faulted`] instead of being trusted.
//!
//! The [`cert_formula`] converter is also what offline tooling
//! (`xtask certify`, the fuzz harness) uses to hand the checker the same
//! base formula the solver was built from.

use unigen_cnf::CnfFormula;
use unigen_satsolver::Solver;

use crate::sampler::SampleStats;

/// Converts a [`CnfFormula`] into the dependency-free representation the
/// [`unigen_cert`] checker verifies proofs against.
///
/// Clause literals map to signed DIMACS integers and xor constraints to
/// 1-based variable lists with their parity — exactly the view of the
/// formula the solver logs its `Axiom` and `XorRow` steps in.
pub fn cert_formula(formula: &CnfFormula) -> unigen_cert::Formula {
    let mut out = unigen_cert::Formula::new(formula.num_vars());
    let mut lits: Vec<i64> = Vec::new();
    for clause in formula.clauses() {
        lits.clear();
        lits.extend(clause.iter().map(|l| l.to_dimacs()));
        out.add_clause(&lits);
    }
    let mut vars: Vec<u64> = Vec::new();
    for xor in formula.xor_clauses() {
        vars.clear();
        vars.extend(xor.vars().iter().map(|v| v.to_dimacs() as u64));
        out.add_xor(&vars, xor.rhs());
    }
    out
}

/// The sampler-side incremental certification state: an independent checker
/// plus a watermark into the solver's proof stream.
///
/// Cloning a solver forks its proof stream; cloning the certifier forks the
/// checker at the same point, so a prepared sampler cloned for a parallel
/// worker keeps stream and checker consistent on both sides.
#[derive(Debug, Clone)]
pub(crate) struct Certifier {
    /// The base formula, kept so the checker can be rebuilt from scratch
    /// when the degradation ladder replaces the solver (and its stream)
    /// with the pristine snapshot.
    formula: unigen_cert::Formula,
    checker: unigen_cert::Checker,
    /// Bytes of the solver's proof stream already fed to the checker.
    watermark: usize,
}

impl Certifier {
    pub(crate) fn new(formula: &CnfFormula) -> Self {
        let formula = cert_formula(formula);
        let checker = unigen_cert::Checker::new(&formula);
        Certifier {
            formula,
            checker,
            watermark: 0,
        }
    }

    /// Feeds every proof byte the solver has logged since the last call into
    /// the checker, folding the byte/check counters into `stats` when given.
    /// (Check *time* is stamped by the caller, which owns the sanctioned
    /// wall-clock path.)
    ///
    /// # Errors
    ///
    /// Propagates the checker's [`unigen_cert::CheckError`] verbatim: the
    /// solver claimed something the independent checker could not verify.
    pub(crate) fn absorb(
        &mut self,
        solver: &mut Solver,
        stats: Option<&mut SampleStats>,
    ) -> Result<(), unigen_cert::CheckError> {
        let Some(bytes) = solver.proof_bytes() else {
            return Ok(());
        };
        let fresh = &bytes[self.watermark.min(bytes.len())..];
        let fed = fresh.len();
        let result = self.checker.feed(fresh);
        self.watermark += fed;
        if let Some(stats) = stats {
            stats.proof_bytes += fed;
            stats.cert_checks += 1;
        }
        result
    }

    /// Discards all checker state: called when the solver is rebuilt from
    /// its pristine snapshot, whose (cloned) proof stream diverges from the
    /// stream the checker has consumed so far. The next [`Certifier::absorb`]
    /// re-verifies the new stream from its beginning.
    pub(crate) fn reset(&mut self) {
        self.checker = unigen_cert::Checker::new(&self.formula);
        self.watermark = 0;
    }

    /// Number of proof-stream steps verified so far.
    pub(crate) fn steps(&self) -> u64 {
        self.checker.steps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unigen_cnf::{Lit, Var, XorClause};

    #[test]
    fn converter_preserves_clauses_and_xors() {
        let mut f = CnfFormula::new(4);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(-3)])
            .unwrap();
        f.add_xor_clause(XorClause::new([Var::new(0), Var::new(3)], true))
            .unwrap();
        let cert = cert_formula(&f);
        assert_eq!(cert.num_vars(), 4);
        assert_eq!(cert.num_clauses(), 1);
        assert_eq!(cert.num_xors(), 1);
    }

    #[test]
    fn absorb_without_a_proof_sink_is_a_no_op() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        let mut solver = Solver::from_formula(&f);
        let mut cert = Certifier::new(&f);
        let mut stats = SampleStats::default();
        cert.absorb(&mut solver, Some(&mut stats)).unwrap();
        assert_eq!(cert.steps(), 0);
        assert_eq!(stats.proof_bytes, 0);
        assert_eq!(stats.cert_checks, 0);
    }
}
