//! Seeded, deterministic fault plans for chaos testing the sampling stack.
//!
//! A [`FaultPlan`] is the user-facing description of a fault schedule: fail
//! the Nth `BSAT` call, exhaust a budget with probability *p* per call,
//! poison a Gauss–Jordan seal, panic worker *k* at item *i*. It is threaded
//! through [`crate::SamplerBuilder::fault_plan`] into the samplers (where it
//! doubles as the solver's [`FaultHook`]) and into
//! [`crate::service::SamplerService`] (where the worker-panic primitive
//! lives). The default — no plan at all — is a no-op that costs one pointer
//! test on the solver's hot path; the bench gates in CI pin that.
//!
//! Every decision the plan makes is a pure function of its seed and its
//! call counters (SplitMix64 over `seed ^ counter`), never of wall-clock or
//! OS randomness, so a schedule replays identically run after run — the
//! chaos differential harness compares faulted runs against fault-free runs
//! bit for bit.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use unigen_satsolver::{FaultHook, FaultSite};

/// The SplitMix64 finaliser, the workspace's standard seed mixer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded, deterministic fault-injection schedule.
///
/// Build one with [`FaultPlan::seeded`] plus the fault primitives, install
/// it with [`crate::SamplerBuilder::fault_plan`], and read back what
/// happened with [`FaultPlan::faults_injected`]. All counters are shared
/// across clones of the sampler (the plan lives behind an `Arc`), so the
/// schedule is global to the sampler or service it is installed on.
///
/// # Example
///
/// ```
/// use unigen::FaultPlan;
///
/// let plan = FaultPlan::seeded(0xc4a05)
///     .fail_nth_bsat(2)
///     .poison_nth_gauss_seal(1);
/// assert_eq!(plan.faults_injected(), 0);
/// ```
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    fail_nth_bsat: Option<u64>,
    exhaust_permille: u16,
    poison_nth_gauss_seal: Option<u64>,
    panic_worker: Option<(usize, usize)>,
    /// `BSAT` calls announced via [`FaultPlan::begin_bsat`].
    bsat_calls: AtomicU64,
    /// Gauss seals attempted (counted at the hook).
    gauss_seals: AtomicU64,
    /// Whether the *current* `BSAT` call is scheduled to fail; armed by
    /// `begin_bsat`, consumed by the first solve of that call.
    armed: AtomicBool,
    /// Whether the worker-panic primitive has already fired (one-shot).
    panic_fired: AtomicBool,
    /// Total faults injected so far, across all primitives.
    faults: AtomicU64,
}

impl FaultPlan {
    /// Creates an empty plan (injects nothing) with the given seed for the
    /// probabilistic primitive.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Schedules the `n`-th `BSAT` call (1-based, counted per
    /// [`FaultPlan::begin_bsat`]) to fail with an injected fault.
    pub fn fail_nth_bsat(mut self, n: u64) -> Self {
        self.fail_nth_bsat = Some(n);
        self
    }

    /// Schedules every `BSAT` call to fail with probability
    /// `permille / 1000`, decided by SplitMix64 over the plan's seed and
    /// the call index — deterministic for a fixed seed.
    pub fn exhaust_with_permille(mut self, permille: u16) -> Self {
        self.exhaust_permille = permille.min(1000);
        self
    }

    /// Schedules the `n`-th Gauss seal attempt (1-based) to be poisoned:
    /// the solver leaves the pending layers intact and returns
    /// `InterruptReason::GaussPoisoned`, which the samplers answer by
    /// retrying the cell with Gauss elimination off.
    pub fn poison_nth_gauss_seal(mut self, n: u64) -> Self {
        self.poison_nth_gauss_seal = Some(n);
        self
    }

    /// Schedules worker `worker` to panic when it executes batch item
    /// `item` (one-shot: the respawned worker retries the item without
    /// re-panicking, so the batch completes).
    pub fn panic_worker_at(mut self, worker: usize, item: usize) -> Self {
        self.panic_worker = Some((worker, item));
        self
    }

    /// Total faults injected so far (solver trips plus worker panics).
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// `BSAT` calls announced so far via [`FaultPlan::begin_bsat`].
    pub fn bsat_calls(&self) -> u64 {
        self.bsat_calls.load(Ordering::Relaxed)
    }

    /// Announces the start of one `BSAT` call (a whole hash-cell
    /// enumeration, not one underlying solve) and decides — from the call
    /// index and the plan seed alone — whether it is scheduled to fail.
    /// The samplers call this before every *fresh* cell enumeration;
    /// retries of a faulted call are deliberately not announced, so a
    /// retry runs fault-free and the recovery ladder converges.
    pub fn begin_bsat(&self) {
        let n = self.bsat_calls.fetch_add(1, Ordering::Relaxed) + 1;
        let mut fail = self.fail_nth_bsat == Some(n);
        if !fail && self.exhaust_permille > 0 {
            fail = splitmix64(self.seed ^ n) % 1000 < u64::from(self.exhaust_permille);
        }
        self.armed.store(fail, Ordering::Relaxed);
    }

    /// Returns `true` exactly once if this plan schedules `worker` to
    /// panic at `item` — consulted by the service before executing an
    /// item.
    pub fn should_panic_worker(&self, worker: usize, item: usize) -> bool {
        if self.panic_worker != Some((worker, item)) {
            return false;
        }
        let fired = self.panic_fired.swap(true, Ordering::Relaxed);
        if !fired {
            self.faults.fetch_add(1, Ordering::Relaxed);
        }
        !fired
    }
}

impl FaultHook for FaultPlan {
    fn trip(&self, site: FaultSite) -> bool {
        match site {
            // The first solve of an armed BSAT call takes the fault; warm
            // continuations within the same call run normally.
            FaultSite::SolveStart => {
                let tripped = self.armed.swap(false, Ordering::Relaxed);
                if tripped {
                    self.faults.fetch_add(1, Ordering::Relaxed);
                }
                tripped
            }
            // Budget-style faults are modelled at call entry; the
            // SearchStep site stays available for custom hooks.
            FaultSite::SearchStep => false,
            FaultSite::GaussSeal => {
                let n = self.gauss_seals.fetch_add(1, Ordering::Relaxed) + 1;
                let tripped = self.poison_nth_gauss_seal == Some(n);
                if tripped {
                    self.faults.fetch_add(1, Ordering::Relaxed);
                }
                tripped
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_trips() {
        let plan = FaultPlan::seeded(1);
        for _ in 0..10 {
            plan.begin_bsat();
            assert!(!plan.trip(FaultSite::SolveStart));
            assert!(!plan.trip(FaultSite::SearchStep));
            assert!(!plan.trip(FaultSite::GaussSeal));
        }
        assert!(!plan.should_panic_worker(0, 0));
        assert_eq!(plan.faults_injected(), 0);
    }

    #[test]
    fn nth_bsat_fails_exactly_once_and_only_when_armed() {
        let plan = FaultPlan::seeded(2).fail_nth_bsat(2);
        plan.begin_bsat();
        assert!(!plan.trip(FaultSite::SolveStart));
        plan.begin_bsat();
        assert!(plan.trip(FaultSite::SolveStart), "second call must fail");
        // The warm continuation (and an un-announced retry) runs clean.
        assert!(!plan.trip(FaultSite::SolveStart));
        plan.begin_bsat();
        assert!(!plan.trip(FaultSite::SolveStart));
        assert_eq!(plan.faults_injected(), 1);
    }

    #[test]
    fn permille_schedule_is_deterministic() {
        let decide = |seed: u64| {
            let plan = FaultPlan::seeded(seed).exhaust_with_permille(500);
            (0..64)
                .map(|_| {
                    plan.begin_bsat();
                    plan.trip(FaultSite::SolveStart)
                })
                .collect::<Vec<bool>>()
        };
        let a = decide(77);
        assert_eq!(a, decide(77), "same seed must replay identically");
        assert_ne!(a, decide(78), "different seeds should differ");
        let trips = a.iter().filter(|&&t| t).count();
        assert!((10..=54).contains(&trips), "p=0.5 over 64 calls: {trips}");
    }

    #[test]
    fn gauss_poison_and_worker_panic_are_one_shot() {
        let plan = FaultPlan::seeded(3)
            .poison_nth_gauss_seal(2)
            .panic_worker_at(1, 4);
        assert!(!plan.trip(FaultSite::GaussSeal));
        assert!(plan.trip(FaultSite::GaussSeal));
        assert!(!plan.trip(FaultSite::GaussSeal));
        assert!(!plan.should_panic_worker(0, 4));
        assert!(!plan.should_panic_worker(1, 3));
        assert!(plan.should_panic_worker(1, 4));
        assert!(!plan.should_panic_worker(1, 4), "panic is one-shot");
        assert_eq!(plan.faults_injected(), 2);
    }
}
