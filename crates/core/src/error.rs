//! Errors reported by the samplers.

use std::fmt;

use unigen_counting::CountingError;

/// Errors that can occur while constructing or preparing a sampler.
///
/// Note that an *unsuccessful sample* (the paper's `⊥` outcome) is not an
/// error: probabilistic generators are allowed to fail occasionally, and the
/// failure is reported through [`crate::SampleOutcome::witness`] being
/// `None`. Errors are reserved for conditions that make sampling impossible
/// or meaningless.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SamplerError {
    /// The tolerance ε is at or below the theoretical minimum of 1.71 for
    /// which `ComputeKappaPivot` has a solution (Algorithm 2).
    EpsilonTooSmall {
        /// The rejected tolerance.
        epsilon_milli: u64,
    },
    /// The formula has no witnesses at all.
    Unsatisfiable,
    /// The formula (or the caller) declared an empty sampling set.
    EmptySamplingSet,
    /// The approximate model counter failed (line 9 of Algorithm 1).
    Counting(CountingError),
    /// The initial bounded enumeration (line 4 of Algorithm 1) exceeded its
    /// budget, so the sampler could not be prepared.
    PreparationBudgetExhausted,
}

impl fmt::Display for SamplerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplerError::EpsilonTooSmall { epsilon_milli } => write!(
                f,
                "tolerance {:.3} is not above the minimum of 1.71 required by ComputeKappaPivot",
                *epsilon_milli as f64 / 1000.0
            ),
            SamplerError::Unsatisfiable => write!(f, "the formula has no witnesses"),
            SamplerError::EmptySamplingSet => write!(f, "the sampling set is empty"),
            SamplerError::Counting(err) => write!(f, "model counting failed: {err}"),
            SamplerError::PreparationBudgetExhausted => {
                write!(f, "the preparation phase exhausted its budget")
            }
        }
    }
}

impl std::error::Error for SamplerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SamplerError::Counting(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CountingError> for SamplerError {
    fn from(err: CountingError) -> Self {
        SamplerError::Counting(err)
    }
}

impl SamplerError {
    /// Convenience constructor carrying the rejected ε (stored in
    /// thousandths to keep the error type `Eq`).
    pub fn epsilon_too_small(epsilon: f64) -> Self {
        SamplerError::EpsilonTooSmall {
            epsilon_milli: (epsilon * 1000.0).round().max(0.0) as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_error_reports_value() {
        let err = SamplerError::epsilon_too_small(1.5);
        assert!(err.to_string().contains("1.500"));
    }

    #[test]
    fn counting_errors_convert_and_chain() {
        use std::error::Error;
        let err: SamplerError = CountingError::NoEstimate.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("counting"));
    }
}
