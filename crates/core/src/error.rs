//! Errors reported by the samplers.

use std::fmt;

use unigen_counting::CountingError;

/// Errors that can occur while constructing or preparing a sampler.
///
/// Note that an *unsuccessful sample* (the paper's `⊥` outcome) is not an
/// error: probabilistic generators are allowed to fail occasionally, and the
/// failure is reported through [`crate::SampleOutcome::witness`] being
/// `None`. Errors are reserved for conditions that make sampling impossible
/// or meaningless.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SamplerError {
    /// The tolerance ε is at or below the theoretical minimum of 1.71 for
    /// which `ComputeKappaPivot` has a solution (Algorithm 2).
    EpsilonTooSmall {
        /// The rejected tolerance.
        epsilon_milli: u64,
    },
    /// The formula has no witnesses at all.
    Unsatisfiable,
    /// The formula (or the caller) declared an empty sampling set.
    EmptySamplingSet,
    /// The approximate model counter failed (line 9 of Algorithm 1).
    Counting(CountingError),
    /// The initial bounded enumeration (line 4 of Algorithm 1) exceeded its
    /// budget, so the sampler could not be prepared.
    PreparationBudgetExhausted,
    /// Certified enumeration was requested and the preparation phase's proof
    /// failed to check: the solver claimed something the independent
    /// [`unigen_cert`] checker could not verify. The rendered
    /// [`unigen_cert::CheckError`] is carried as text (the error type itself
    /// lives in the checker crate, which this crate must not leak into its
    /// stable error surface).
    CertificationFailed {
        /// The checker's rejection, rendered.
        detail: String,
    },
}

impl fmt::Display for SamplerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SamplerError::EpsilonTooSmall { epsilon_milli } => write!(
                f,
                "tolerance {:.3} is not above the minimum of 1.71 required by ComputeKappaPivot",
                *epsilon_milli as f64 / 1000.0
            ),
            SamplerError::Unsatisfiable => write!(f, "the formula has no witnesses"),
            SamplerError::EmptySamplingSet => write!(f, "the sampling set is empty"),
            SamplerError::Counting(err) => write!(f, "model counting failed: {err}"),
            SamplerError::PreparationBudgetExhausted => {
                write!(f, "the preparation phase exhausted its budget")
            }
            SamplerError::CertificationFailed { detail } => {
                write!(f, "proof certification failed during preparation: {detail}")
            }
        }
    }
}

impl std::error::Error for SamplerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SamplerError::Counting(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CountingError> for SamplerError {
    fn from(err: CountingError) -> Self {
        SamplerError::Counting(err)
    }
}

impl SamplerError {
    /// Convenience constructor carrying the rejected ε (stored in
    /// thousandths to keep the error type `Eq`).
    pub fn epsilon_too_small(epsilon: f64) -> Self {
        SamplerError::EpsilonTooSmall {
            epsilon_milli: (epsilon * 1000.0).round().max(0.0) as u64,
        }
    }
}

/// Errors reported by [`crate::SamplerBuilder::build`] — the *prepare-time*
/// half of the error taxonomy.
///
/// Build errors are typed separately from request-time conditions (see
/// [`TrySubmitError`]): a build error means the sampler could never have
/// produced a witness and the caller's spec or formula must change, whereas a
/// request-time error is transient and the same request can simply be
/// retried. (An unsuccessful *sample* — the paper's `⊥` — is neither: it is
/// an ordinary outcome, reported through
/// [`crate::SampleOutcome::witness`] being `None`.)
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BuildError {
    /// An option was set that the selected sampler family does not have (for
    /// example `epsilon` on a UniWit spec, or `sampling_set` on UniWit,
    /// which by definition hashes over the full support).
    UnsupportedOption {
        /// The builder method that was misapplied.
        option: &'static str,
        /// The sampler family the spec selects.
        sampler: &'static str,
    },
    /// The preparation phase itself failed (the one-off work the sampler's
    /// constructor performs: κ/pivot, the `BSAT` probe, approximate
    /// counting).
    Prepare(SamplerError),
    /// [`crate::SamplerBuilder::into_service`] was asked to start a
    /// service with an invalid configuration.
    Service(ServiceConfigError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnsupportedOption { option, sampler } => {
                write!(
                    f,
                    "option `{option}` is not supported by the {sampler} sampler"
                )
            }
            BuildError::Prepare(err) => write!(f, "preparation failed: {err}"),
            BuildError::Service(err) => write!(f, "service configuration rejected: {err}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Prepare(err) => Some(err),
            BuildError::Service(err) => Some(err),
            _ => None,
        }
    }
}

impl From<SamplerError> for BuildError {
    fn from(err: SamplerError) -> Self {
        BuildError::Prepare(err)
    }
}

impl From<ServiceConfigError> for BuildError {
    fn from(err: ServiceConfigError) -> Self {
        BuildError::Service(err)
    }
}

/// Rejection returned by [`crate::SamplerService::try_new`] when a
/// [`crate::service::ServiceConfig`] is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServiceConfigError {
    /// The configuration asked for a pool of zero workers; a service with
    /// no workers could never answer a request.
    ZeroWorkers,
}

impl fmt::Display for ServiceConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceConfigError::ZeroWorkers => {
                write!(f, "a sampler service requires at least one worker")
            }
        }
    }
}

impl std::error::Error for ServiceConfigError {}

/// Rejection returned by [`crate::SamplerService::try_submit`] — the
/// *request-time* half of the error taxonomy.
///
/// Request-time rejections are transient: the returned request is handed
/// back to the caller untouched, and re-submitting it later (or blocking in
/// [`crate::SamplerService::submit`]) is always legal. Thanks to the
/// per-`(master_seed, index)` determinism contract a retried request
/// reproduces exactly the witnesses the rejected one would have produced, so
/// an RPC front end gets idempotent retries for free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TrySubmitError {
    /// The service's bounded request queue is at capacity; the rejected
    /// request is returned so the caller can retry it verbatim.
    QueueFull {
        /// The request that was not admitted.
        request: crate::service::SampleRequest,
    },
}

impl fmt::Display for TrySubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySubmitError::QueueFull { request } => write!(
                f,
                "the service request queue is full (rejected request: {} samples, master seed {})",
                request.count, request.master_seed
            ),
        }
    }
}

impl std::error::Error for TrySubmitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_error_reports_value() {
        let err = SamplerError::epsilon_too_small(1.5);
        assert!(err.to_string().contains("1.500"));
    }

    #[test]
    fn counting_errors_convert_and_chain() {
        use std::error::Error;
        let err: SamplerError = CountingError::NoEstimate.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("counting"));
    }
}
