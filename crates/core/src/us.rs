//! US — the ideal uniform sampler used as the reference in the Figure 1
//! uniformity study.
//!
//! The paper describes US as follows: "Given a CNF formula F, US first
//! determines |R_F| using an exact model counter (such as sharpSAT). To mimic
//! generating a random witness, US simply generates a random number i in
//! {1 … |R_F|}." That is exactly what this module does, with the workspace's
//! own exact counter in place of sharpSAT. For small formulas the sampler can
//! additionally *materialise* the witness list so that it satisfies the
//! common [`WitnessSampler`] interface and can be plugged into the same
//! harness as UniGen.

use std::sync::Arc;
use std::time::Instant;

use rand::{Rng, RngCore};

use unigen_cnf::{CnfFormula, Model, Var};
use unigen_counting::ExactCounter;
use unigen_satsolver::{bounded_solutions, Budget, Solver};

use crate::error::SamplerError;
use crate::sampler::{SampleOutcome, SampleStats, WitnessSampler};

/// The ideal uniform sampler.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use unigen::UniformSampler;
/// use unigen_cnf::{CnfFormula, Lit};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut f = CnfFormula::new(3);
/// f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2), Lit::from_dimacs(3)])?;
/// let sampler = UniformSampler::new(&f)?;
/// assert_eq!(sampler.count(), 7);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let index = sampler.sample_index(&mut rng);
/// assert!(index < 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct UniformSampler {
    count: u128,
    /// Materialised witnesses in canonical (projection) order, shared via
    /// [`Arc`] so parallel worker clones do not copy the list.
    witnesses: Option<Arc<[Model]>>,
}

impl UniformSampler {
    /// Creates the sampler by counting `|R_F|` exactly.
    ///
    /// # Errors
    ///
    /// * [`SamplerError::Unsatisfiable`] if the formula has no witnesses,
    /// * [`SamplerError::Counting`] if the exact counter cannot handle the
    ///   formula (for example an xor constraint longer than its expansion
    ///   limit).
    pub fn new(formula: &CnfFormula) -> Result<Self, SamplerError> {
        let count = ExactCounter::new().count(formula)?;
        if count == 0 {
            return Err(SamplerError::Unsatisfiable);
        }
        Ok(UniformSampler {
            count,
            witnesses: None,
        })
    }

    /// Creates the sampler *and* materialises every witness (projected on
    /// `sampling_set`), so that [`WitnessSampler::sample`] can return
    /// concrete models. Only appropriate for formulas whose witness count is
    /// comfortably enumerable.
    ///
    /// # Errors
    ///
    /// * the same errors as [`UniformSampler::new`], plus
    /// * [`SamplerError::PreparationBudgetExhausted`] if enumeration of all
    ///   witnesses does not finish.
    pub fn with_witnesses(
        formula: &CnfFormula,
        sampling_set: &[Var],
    ) -> Result<Self, SamplerError> {
        let mut sampler = UniformSampler::new(formula)?;
        let mut solver = Solver::from_formula(formula);
        let count = sampler.count;
        let limit = usize::try_from(count).map_err(|_| SamplerError::PreparationBudgetExhausted)?;
        let outcome = bounded_solutions(&mut solver, sampling_set, limit + 1, &Budget::new());
        if outcome.len() as u128 != count {
            // The exact counter counts total assignments; if the sampling set
            // is not an independent support the projected enumeration can
            // disagree. Treat that as a preparation failure rather than
            // silently sampling from the wrong space.
            return Err(SamplerError::PreparationBudgetExhausted);
        }
        // Canonical order (audit note: US has no width scan to overshoot,
        // but its uniform pick must be enumeration-order independent for the
        // same reason as the hashing samplers' cell picks).
        let mut witnesses = outcome.witnesses;
        crate::sampler::sort_witnesses_canonically(&mut witnesses, sampling_set);
        sampler.witnesses = Some(witnesses.into());
        Ok(sampler)
    }

    /// Returns the exact witness count `|R_F|`.
    pub fn count(&self) -> u128 {
        self.count
    }

    /// Draws a uniformly random witness index in `0 .. |R_F|`.
    pub fn sample_index(&self, rng: &mut dyn RngCore) -> u128 {
        // `gen_range` on u128 is supported by the `rand` crate directly.
        rng.gen_range(0..self.count)
    }

    /// Returns the materialised witnesses, if [`UniformSampler::with_witnesses`]
    /// was used.
    pub fn witnesses(&self) -> Option<&[Model]> {
        self.witnesses.as_deref()
    }
}

impl WitnessSampler for UniformSampler {
    /// Returns a uniformly chosen witness.
    ///
    /// # Panics
    ///
    /// Panics if the sampler was built with [`UniformSampler::new`] (no
    /// materialised witnesses); use [`UniformSampler::with_witnesses`] when
    /// concrete models are required.
    fn sample(&mut self, rng: &mut dyn RngCore) -> SampleOutcome {
        let started = Instant::now();
        let witnesses = self
            .witnesses
            .as_ref()
            .expect("UniformSampler::with_witnesses is required for model sampling");
        let index = rng.gen_range(0..witnesses.len());
        SampleOutcome::of_witness(
            witnesses[index].clone(),
            SampleStats {
                wall_time: started.elapsed(),
                ..SampleStats::default()
            },
        )
    }

    fn name(&self) -> &'static str {
        "US"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unigen_cnf::Lit;

    fn or_formula() -> CnfFormula {
        let mut f = CnfFormula::new(3);
        f.add_clause([
            Lit::from_dimacs(1),
            Lit::from_dimacs(2),
            Lit::from_dimacs(3),
        ])
        .unwrap();
        f
    }

    #[test]
    fn count_matches_brute_force() {
        let f = or_formula();
        let sampler = UniformSampler::new(&f).unwrap();
        assert_eq!(sampler.count(), 7);
    }

    #[test]
    fn indices_are_in_range_and_spread_out() {
        let f = or_formula();
        let sampler = UniformSampler::new(&f).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let index = sampler.sample_index(&mut rng);
            assert!(index < 7);
            seen.insert(index);
        }
        assert_eq!(seen.len(), 7, "200 draws should hit all 7 indices");
    }

    #[test]
    fn unsat_formula_is_rejected() {
        let mut f = CnfFormula::new(1);
        f.add_clause([Lit::from_dimacs(1)]).unwrap();
        f.add_clause([Lit::from_dimacs(-1)]).unwrap();
        assert!(matches!(
            UniformSampler::new(&f),
            Err(SamplerError::Unsatisfiable)
        ));
    }

    #[test]
    fn materialised_witnesses_enable_model_sampling() {
        let f = or_formula();
        let vars: Vec<Var> = (0..3).map(Var::new).collect();
        let mut sampler = UniformSampler::with_witnesses(&f, &vars).unwrap();
        assert_eq!(sampler.witnesses().unwrap().len(), 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let outcome = sampler.sample(&mut rng);
            assert!(f.evaluate(&outcome.witness.unwrap()));
        }
    }

    #[test]
    #[should_panic]
    fn model_sampling_without_witnesses_panics() {
        let f = or_formula();
        let mut sampler = UniformSampler::new(&f).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let _ = sampler.sample(&mut rng);
    }
}
