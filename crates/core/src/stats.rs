//! Distribution statistics for the uniformity study (Figure 1).
//!
//! The paper's Figure 1 plots, for UniGen and for the ideal sampler US, the
//! *count-of-counts* distribution: after drawing `N` samples, how many
//! distinct witnesses were generated exactly `c` times, for each `c`. Two
//! samplers with indistinguishable curves produce indistinguishable
//! distributions in practice. This module builds that histogram and a few
//! summary distances (total variation, Kullback–Leibler, Pearson χ²) used by
//! the tests and the `figure1` harness binary.

use std::collections::{BTreeMap, HashMap};

/// Frequencies of individual witnesses across a sampling run.
///
/// Witnesses are identified by an opaque `u64` label — typically the
/// projection of the model onto the sampling set interpreted as an integer
/// (see [`unigen_cnf::Model::project`]), or the index drawn by the ideal
/// sampler.
///
/// # Example
///
/// ```
/// use unigen::stats::WitnessFrequencies;
///
/// let freq: WitnessFrequencies = [1u64, 2, 2, 3, 3, 3].into_iter().collect();
/// assert_eq!(freq.num_samples(), 6);
/// assert_eq!(freq.num_distinct(), 3);
/// let histogram = freq.count_of_counts();
/// assert_eq!(histogram[&1], 1); // one witness seen once
/// assert_eq!(histogram[&2], 1); // one witness seen twice
/// assert_eq!(histogram[&3], 1); // one witness seen three times
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WitnessFrequencies {
    counts: HashMap<u64, u64>,
    samples: u64,
}

impl WitnessFrequencies {
    /// Creates an empty frequency table.
    pub fn new() -> Self {
        WitnessFrequencies::default()
    }

    /// Records one generated witness.
    pub fn record(&mut self, witness_id: u64) {
        *self.counts.entry(witness_id).or_insert(0) += 1;
        self.samples += 1;
    }

    /// Total number of samples recorded.
    pub fn num_samples(&self) -> u64 {
        self.samples
    }

    /// Number of distinct witnesses observed at least once.
    pub fn num_distinct(&self) -> usize {
        self.counts.len()
    }

    /// Returns the frequency of a specific witness.
    pub fn count(&self, witness_id: u64) -> u64 {
        self.counts.get(&witness_id).copied().unwrap_or(0)
    }

    /// The Figure 1 series: for each observed frequency `c`, the number of
    /// distinct witnesses generated exactly `c` times.
    pub fn count_of_counts(&self) -> BTreeMap<u64, u64> {
        let mut histogram = BTreeMap::new();
        for &count in self.counts.values() {
            *histogram.entry(count).or_insert(0) += 1;
        }
        histogram
    }

    /// Total variation distance between the empirical distribution and the
    /// uniform distribution over `num_witnesses` witnesses.
    ///
    /// # Panics
    ///
    /// Panics if `num_witnesses` is zero or no samples were recorded.
    pub fn total_variation_from_uniform(&self, num_witnesses: u128) -> f64 {
        assert!(num_witnesses > 0, "need at least one witness");
        assert!(self.samples > 0, "need at least one sample");
        let uniform = 1.0 / num_witnesses as f64;
        let n = self.samples as f64;
        let mut distance = 0.0;
        for &count in self.counts.values() {
            distance += (count as f64 / n - uniform).abs();
        }
        // Witnesses never observed each contribute `uniform`.
        let unseen = num_witnesses as f64 - self.counts.len() as f64;
        distance += unseen.max(0.0) * uniform;
        distance / 2.0
    }

    /// Kullback–Leibler divergence `D(empirical ‖ uniform)` in bits, summed
    /// over the observed witnesses (unobserved witnesses contribute zero).
    ///
    /// # Panics
    ///
    /// Panics if `num_witnesses` is zero or no samples were recorded.
    pub fn kl_divergence_from_uniform(&self, num_witnesses: u128) -> f64 {
        assert!(num_witnesses > 0, "need at least one witness");
        assert!(self.samples > 0, "need at least one sample");
        let uniform = 1.0 / num_witnesses as f64;
        let n = self.samples as f64;
        self.counts
            .values()
            .map(|&count| {
                let p = count as f64 / n;
                p * (p / uniform).log2()
            })
            .sum()
    }

    /// Pearson χ² statistic against the uniform distribution over
    /// `num_witnesses` witnesses (including the unobserved ones).
    ///
    /// # Panics
    ///
    /// Panics if `num_witnesses` is zero or no samples were recorded.
    pub fn chi_square_against_uniform(&self, num_witnesses: u128) -> f64 {
        assert!(num_witnesses > 0, "need at least one witness");
        assert!(self.samples > 0, "need at least one sample");
        let expected = self.samples as f64 / num_witnesses as f64;
        let observed_sum: f64 = self
            .counts
            .values()
            .map(|&count| {
                let diff = count as f64 - expected;
                diff * diff / expected
            })
            .sum();
        let unseen = (num_witnesses as f64 - self.counts.len() as f64).max(0.0);
        observed_sum + unseen * expected
    }
}

impl FromIterator<u64> for WitnessFrequencies {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut freq = WitnessFrequencies::new();
        for id in iter {
            freq.record(id);
        }
        freq
    }
}

/// Largest absolute difference between the two count-of-count histograms,
/// normalised by the number of distinct witnesses — a crude but readable
/// "can you tell the curves apart" score for Figure 1 style comparisons.
pub fn histogram_discrepancy(a: &WitnessFrequencies, b: &WitnessFrequencies) -> f64 {
    let ha = a.count_of_counts();
    let hb = b.count_of_counts();
    let keys: std::collections::BTreeSet<u64> = ha.keys().chain(hb.keys()).copied().collect();
    let denom = a.num_distinct().max(b.num_distinct()).max(1) as f64;
    keys.into_iter()
        .map(|k| {
            let va = ha.get(&k).copied().unwrap_or(0) as f64;
            let vb = hb.get(&k).copied().unwrap_or(0) as f64;
            (va - vb).abs() / denom
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use rand::SeedableRng;

    #[test]
    fn record_and_count() {
        let mut freq = WitnessFrequencies::new();
        freq.record(10);
        freq.record(10);
        freq.record(20);
        assert_eq!(freq.num_samples(), 3);
        assert_eq!(freq.num_distinct(), 2);
        assert_eq!(freq.count(10), 2);
        assert_eq!(freq.count(99), 0);
    }

    #[test]
    fn count_of_counts_matches_hand_computation() {
        let freq: WitnessFrequencies = [1u64, 1, 1, 2, 2, 3].into_iter().collect();
        let histogram = freq.count_of_counts();
        assert_eq!(histogram[&3], 1);
        assert_eq!(histogram[&2], 1);
        assert_eq!(histogram[&1], 1);
    }

    #[test]
    fn perfect_uniformity_has_zero_distance() {
        // Every one of 4 witnesses sampled exactly 5 times.
        let freq: WitnessFrequencies = (0u64..4).flat_map(|w| [w; 5]).collect();
        assert!(freq.total_variation_from_uniform(4) < 1e-12);
        assert!(freq.kl_divergence_from_uniform(4).abs() < 1e-12);
        assert!(freq.chi_square_against_uniform(4) < 1e-12);
    }

    #[test]
    fn concentrated_distribution_has_large_distance() {
        // All mass on a single witness out of 10.
        let freq: WitnessFrequencies = std::iter::repeat(7u64).take(100).collect();
        let tv = freq.total_variation_from_uniform(10);
        assert!((tv - 0.9).abs() < 1e-9, "tv = {tv}");
        assert!(freq.kl_divergence_from_uniform(10) > 3.0);
        assert!(freq.chi_square_against_uniform(10) > 100.0);
    }

    #[test]
    fn uniform_random_sampler_has_small_distance() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let num_witnesses = 64u64;
        let freq: WitnessFrequencies = (0..20_000)
            .map(|_| rng.gen_range(0..num_witnesses))
            .collect();
        assert!(freq.total_variation_from_uniform(num_witnesses as u128) < 0.1);
    }

    #[test]
    fn discrepancy_between_identical_runs_is_small() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let a: WitnessFrequencies = (0..5000).map(|_| rng.gen_range(0u64..32)).collect();
        let b: WitnessFrequencies = (0..5000).map(|_| rng.gen_range(0u64..32)).collect();
        assert!(histogram_discrepancy(&a, &b) < 0.5);
        assert_eq!(histogram_discrepancy(&a, &a), 0.0);
    }
}
