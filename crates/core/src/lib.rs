//! UniGen — almost-uniform generation of SAT witnesses (DAC 2014), rebuilt in
//! Rust together with every baseline the paper measures against.
//!
//! Constrained-random verification needs *random enough* stimuli: given a
//! constraint `F` over circuit inputs, every solution should be (almost)
//! equally likely to be generated, because bugs are not known to hide in any
//! particular corner. [`UniGen`] provides that guarantee: for a tolerance
//! `ε > 1.71` and an independent support `S` of `F`, every witness `y` is
//! produced with probability within a `(1 + ε)` factor of uniform
//! (Theorem 1), with success probability at least 0.62, while hashing only
//! over `S` keeps the xor constraints short enough to scale.
//!
//! The crate also contains the comparison points used in the paper's
//! evaluation:
//!
//! * [`UniWit`] — the CAV 2013 near-uniform generator (full-support hashing,
//!   per-sample search for the hash width),
//! * [`XorSamplePrime`] — the NIPS 2007 sampler that needs a user-supplied
//!   hash width,
//! * [`UniformSampler`] — the ideal sampler "US" used in the Figure 1
//!   uniformity study (exact count + uniform index draw),
//! * [`stats`] — count-of-count histograms and distance measures for the
//!   uniformity comparison.
//!
//! For high-volume generation the crate exposes a **service API**: any
//! family is constructed through one [`SamplerBuilder`] entry point, and a
//! [`SamplerService`] answers typed [`SampleRequest`]s over a persistent
//! work-stealing worker pool with a bit-identical-at-any-worker-count
//! determinism contract — the paper's "embarrassingly parallel" observation
//! made concrete and shaped for an RPC boundary. See
//! [`WitnessSampler::sample_batch`] for the serial reference semantics and
//! the [`service`] module docs for the contract.
//! [`ParallelSampler`] remains as a thin compatibility wrapper over a
//! single-request service.
//!
//! With [`UniGenConfig::certify`] the persistent solver additionally logs a
//! DRAT-style proof of every cell enumeration, verified online by the
//! independent `unigen-cert` checker (and offline via `cargo xtask certify`
//! over a dumped stream); see [`cert_formula`] and the `unigen-cert` crate
//! docs for the certificate semantics.
//!
//! ```
//! use unigen::{SamplerBuilder, SampleRequest, ServiceConfig};
//! use unigen_cnf::{CnfFormula, Lit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut f = CnfFormula::new(3);
//! f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2), Lit::from_dimacs(3)])?;
//! let service = SamplerBuilder::unigen(&f)
//!     .epsilon(6.0)
//!     .into_service(ServiceConfig::default().with_workers(2))?;
//! let response = service.submit(SampleRequest::new(8, 0xdac2014)).wait();
//! assert_eq!(response.outcomes.len(), 8);
//! # Ok(())
//! # }
//! ```
//!
//! # Quick start
//!
//! ```
//! use rand::SeedableRng;
//! use unigen::{UniGen, UniGenConfig, WitnessSampler};
//! use unigen_cnf::{CnfFormula, Lit, Var, XorClause};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // x3 = x1 ⊕ x2, x4 = x1 ∨ x2; the inputs {x1, x2} form an independent
//! // support. (Real workloads get F and S from a CRV front end; see the
//! // `unigen-circuit` crate.)
//! let mut f = CnfFormula::new(4);
//! f.add_xor_clause(XorClause::from_dimacs([1, 2, 3], false))?;
//! f.add_clause([Lit::from_dimacs(-1), Lit::from_dimacs(4)])?;
//! f.add_clause([Lit::from_dimacs(-2), Lit::from_dimacs(4)])?;
//! f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2), Lit::from_dimacs(-4)])?;
//! f.set_sampling_set([Var::from_dimacs(1), Var::from_dimacs(2)])?;
//!
//! let mut sampler = UniGen::new(&f, UniGenConfig::default())?;
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let outcome = sampler.sample(&mut rng);
//! let witness = outcome.witness.expect("the formula is satisfiable");
//! assert!(f.evaluate(&witness));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod certify;
mod config;
mod error;
mod fault;
mod kappa_pivot;
mod parallel;
mod sampler;
pub mod service;
mod unigen;
mod uniwit;
mod us;
mod xorsample;

pub mod stats;

pub use builder::{AnySampler, SamplerBuilder, SamplerSpec};
pub use certify::cert_formula;
pub use config::UniGenConfig;
pub use error::{BuildError, SamplerError, ServiceConfigError, TrySubmitError};
pub use fault::FaultPlan;
pub use kappa_pivot::{compute_kappa_pivot, KappaPivot};
pub use parallel::ParallelSampler;
pub use sampler::{OutcomeKind, SampleOutcome, SampleStats, WitnessSampler};
pub use service::{
    ResponseHandle, SampleRequest, SampleResponse, SamplerService, ServiceConfig, ServiceHealth,
};
pub use unigen::{PreparedMode, UniGen};
pub use uniwit::{UniWit, UniWitConfig};
pub use us::UniformSampler;
pub use xorsample::{XorSamplePrime, XorSamplePrimeConfig};
