//! The sampling service: typed requests and responses over a **persistent**
//! work-stealing worker pool.
//!
//! The paper observes that witness generation is "embarrassingly parallel";
//! [`crate::ParallelSampler`] (PR 4) proved it with a per-call thread scope
//! and static contiguous chunking. This module is the serving-shaped
//! evolution of that engine, designed so the sampler can later sit behind an
//! async RPC boundary:
//!
//! * **Persistent pool.** A [`SamplerService`] spawns its workers once, at
//!   construction, and each worker clones the prepared sampler exactly once
//!   — the clone is cheap because the heavyweight immutable state (sampling
//!   set, hash family, enumerated witness lists) is [`Arc`]-shared inside
//!   the samplers, while the per-worker incremental solver is private.
//!   Requests then flow through the same pool for the service's whole
//!   lifetime; nothing is re-cloned or re-spawned per batch.
//! * **Work stealing.** Each request's sample indices are dealt into
//!   per-worker deques in contiguous chunks (the same shape as the old
//!   static partition), but an idle worker *steals* from the back of the
//!   busiest other deque instead of going to sleep. Per-sample cost is
//!   highly variable — a cell that needs `BSAT` retries is roughly an order
//!   of magnitude dearer than one accepted at the first width — and under
//!   static chunking one unlucky chunk serialises the whole batch; stealing
//!   absorbs the skew. (The deques are arbitrated by one scheduler lock
//!   rather than a lock-free Chase–Lev deque: the workspace is dependency
//!   free, and at per-sample granularity — milliseconds of solver work per
//!   item — the lock is nowhere near the critical path.)
//! * **Typed messages and backpressure.** Work arrives as a
//!   [`SampleRequest`] and leaves as a [`SampleResponse`]; the number of
//!   in-flight requests is bounded by [`ServiceConfig::queue_capacity`],
//!   with a blocking [`SamplerService::submit`] and a non-blocking
//!   [`SamplerService::try_submit`] that hands a rejected request back to
//!   the caller for a free idempotent retry.
//!
//! # Determinism contract
//!
//! Sample `i` of a request seeded with `master_seed` draws **all** of its
//! randomness from the dedicated stream derived from `(master_seed, i)` —
//! the same rule as the serial reference
//! [`crate::WitnessSampler::sample_batch`] — and every sampler in this crate
//! picks its witness from a canonically ordered cell. The projected witness
//! at position `i` is therefore a pure function of the prepared state,
//! `master_seed` and `i`: it does not depend on the worker count, on which
//! worker ran the item, on whether the item was stolen, or on what other
//! requests were interleaved through the pool. A request's outcome sequence
//! is **bit-identical** to `sample_batch(count, master_seed)` on a clone of
//! the prototype, per request, at any worker count.
//!
//! The scope notes of [`crate::ParallelSampler`] carry over verbatim (the
//! guarantee covers the projection onto the sampling set), with one
//! addition: a [`SampleRequest::budget`] deadline, once expired, makes
//! workers complete the request's not-yet-started samples as typed
//! [`OutcomeKind::Interrupted`] outcomes when they reach them. *Which*
//! samples get cut depends on wall-clock timing, but every outcome that
//! does complete as a witness is still the deterministic witness for its
//! index — interruption narrows the guarantee to the completed samples
//! instead of voiding it. Requests whose budget never fires are unaffected.
//!
//! # Robustness
//!
//! A worker whose sampler panics does not take the pool down: the panic is
//! caught, the worker **respawns** its sampler from the retained prototype
//! (bounded by [`ServiceConfig::max_respawns`] per worker) and retries the
//! same item on the same per-index RNG stream — so an absorbed panic leaves
//! the response bit-identical to an undisturbed run. A worker that exhausts
//! its respawn budget completes its item as [`OutcomeKind::Faulted`] and
//! leaves the pool cleanly; if the *last* worker leaves, queued and future
//! items complete as `Faulted` immediately, so no handle, submitter, or
//! [`SamplerService::shutdown`] call ever hangs on a dead pool. The
//! [`ServiceHealth`] snapshot ([`SamplerService::health`]) reports alive
//! workers, respawns, panics, retries, and queue depth; chaos schedules are
//! injected with [`crate::FaultPlan::panic_worker_at`].
//!
//! # Example
//!
//! ```
//! use unigen::{SamplerBuilder, SamplerService, SampleRequest, ServiceConfig};
//! use unigen_cnf::{CnfFormula, Lit};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut f = CnfFormula::new(3);
//! f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2), Lit::from_dimacs(3)])?;
//!
//! let service = SamplerBuilder::unigen(&f)
//!     .epsilon(6.0)
//!     .into_service(ServiceConfig::default().with_workers(2))?;
//!
//! // Streaming: outcomes arrive as index-ordered prefixes complete.
//! let handle = service.submit(SampleRequest::new(4, 0xdac2014));
//! for outcome in handle {
//!     assert!(outcome.witness.is_some());
//! }
//!
//! // Round trip: collect everything plus aggregate statistics.
//! let response = service.submit(SampleRequest::new(4, 0xdac2014)).wait();
//! assert_eq!(response.outcomes.len(), 4);
//! # Ok(())
//! # }
//! ```

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

use conc::atomic::{AtomicBool, AtomicU64, Ordering};
use conc::sync::{Condvar, Mutex, MutexGuard};
use conc::thread::JoinHandle;

use crate::error::{ServiceConfigError, TrySubmitError};
use crate::fault::FaultPlan;
use crate::sampler::{
    failed_outcome, stream_for_index, OutcomeKind, SampleOutcome, SampleStats, WitnessSampler,
};

/// Shape of a [`SamplerService`]'s worker pool and request queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Number of worker threads. Must be at least 1:
    /// [`SamplerService::try_new`] rejects zero with
    /// [`ServiceConfigError::ZeroWorkers`] ([`SamplerService::new`] clamps
    /// for back-compatibility). Defaults to the machine's available
    /// parallelism.
    pub workers: usize,
    /// Maximum number of admitted-but-not-yet-completed requests (clamped to
    /// at least 1). [`SamplerService::submit`] blocks while the queue is at
    /// capacity; [`SamplerService::try_submit`] returns the request back.
    pub queue_capacity: usize,
    /// How many times each worker may replace a panicked sampler with a
    /// fresh clone of the prototype before giving up and leaving the pool
    /// (see the module docs' *Robustness* section).
    pub max_respawns: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: conc::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            queue_capacity: 16,
            max_respawns: 2,
        }
    }
}

impl ServiceConfig {
    /// Returns a copy with an explicit worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Returns a copy with an explicit request-queue capacity.
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Returns a copy with an explicit per-worker respawn budget.
    pub fn with_max_respawns(mut self, max_respawns: usize) -> Self {
        self.max_respawns = max_respawns;
        self
    }

    /// Checks the configuration, returning the typed error
    /// [`SamplerService::try_new`] propagates.
    pub fn validate(&self) -> Result<(), ServiceConfigError> {
        if self.workers == 0 {
            return Err(ServiceConfigError::ZeroWorkers);
        }
        Ok(())
    }
}

/// One batch of work submitted to a [`SamplerService`].
///
/// A request is a pure value: re-submitting an identical request (same
/// `count` and `master_seed`, budget never firing) reproduces the identical
/// witness sequence, which is what makes retries over an RPC boundary
/// idempotent.
///
/// There is no per-request certify switch: certification is a property of
/// the *prepared sampler* ([`crate::UniGenConfig::certify`]), so a service
/// built from a certified prototype verifies proofs in every worker
/// independently (each clone forks the solver's proof stream together with
/// its checker). A cell whose proof fails to check comes back as a
/// [`crate::OutcomeKind::Faulted`] outcome in the response, and the
/// per-outcome [`crate::SampleStats`] carry the `proof_bytes` /
/// `cert_checks` / `cert_time` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleRequest {
    /// Number of witnesses requested.
    pub count: usize,
    /// Seed of the request's per-index RNG streams: sample `i` draws from
    /// the stream derived from `(master_seed, i)`.
    pub master_seed: u64,
    /// Optional soft wall-clock budget for the whole request, measured from
    /// submission. Expiry is observed **lazily, at item start**: when a
    /// worker picks up a work item past the deadline it completes it as a
    /// typed [`OutcomeKind::Interrupted`] outcome without touching the
    /// solver; items already running are finished normally. The budget
    /// therefore bounds the *solver work* spent on an expired request, not
    /// the response latency — a request stuck behind long-running items
    /// still waits for a worker to reach (and then instantly
    /// interrupt-complete) its items.
    ///
    /// Interruption is distinguishable, and therefore recoverable: *which*
    /// indices get cut depends on wall-clock timing, but an `Interrupted`
    /// outcome says nothing about its witness (unlike the definite
    /// [`OutcomeKind::Bottom`]), and every index that did complete holds
    /// exactly the witness the fault-free run would hold. Re-submitting the
    /// same request with a roomier budget fills in the cut indices with
    /// those same deterministic witnesses. `None`, the default, never fires.
    pub budget: Option<Duration>,
}

impl SampleRequest {
    /// A request for `count` witnesses seeded with `master_seed`, with no
    /// request budget.
    pub fn new(count: usize, master_seed: u64) -> Self {
        SampleRequest {
            count,
            master_seed,
            budget: None,
        }
    }

    /// Returns a copy of this request with a soft wall-clock budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }
}

/// The completed result of a [`SampleRequest`].
#[derive(Debug, Clone)]
pub struct SampleResponse {
    /// The request this response answers.
    pub request: SampleRequest,
    /// One outcome per requested sample, in index order — bit-identical (on
    /// the projected witnesses) to
    /// [`crate::WitnessSampler::sample_batch`]`(count, master_seed)` on a
    /// clone of the service's prototype, at any worker count.
    pub outcomes: Vec<SampleOutcome>,
    /// Every outcome's statistics folded together with
    /// [`SampleStats::accumulate`] — including the scheduler-side `steals`
    /// and `queue_wait` counters.
    pub aggregate_stats: SampleStats,
    /// Wall-clock time from submission to the last outcome's completion.
    pub round_trip: Duration,
}

impl SampleResponse {
    /// Number of outcomes that produced a witness.
    pub fn successes(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_success()).count()
    }
}

/// Per-request completion board: the index-ordered outcome slots plus the
/// bookkeeping the streaming iterator blocks on.
struct Board {
    slots: Vec<Option<SampleOutcome>>,
    completed: usize,
    finished_at: Option<Instant>,
}

/// Shared state of one in-flight request.
struct RequestState {
    request: SampleRequest,
    submitted_at: Instant,
    deadline: Option<Instant>,
    board: Mutex<Board>,
    ready: Condvar,
}

/// One unit of schedulable work: sample `index` of `request`.
struct Item {
    request: Arc<RequestState>,
    index: usize,
}

/// The scheduler proper: per-worker deques plus admission accounting, all
/// behind one lock (see the module docs for why that is enough here).
struct Sched {
    deques: Vec<VecDeque<Item>>,
    in_flight: usize,
    shutdown: bool,
    /// Workers still running their loop. A worker that exhausts its respawn
    /// budget leaves the pool cleanly; when the *last* one leaves, the
    /// queued items are completed as `Faulted` so no handle or submitter
    /// ever blocks on a dead pool.
    alive: usize,
}

/// State shared between the service handle and its workers.
struct Shared {
    sched: Mutex<Sched>,
    /// Workers wait here for items; submitters notify.
    work_available: Condvar,
    /// Submitters wait here for queue capacity; completing workers notify.
    admission: Condvar,
    queue_capacity: usize,
    /// Per-worker respawn budget (see [`ServiceConfig::max_respawns`]).
    max_respawns: usize,
    /// The installed chaos schedule, if any: consulted per item for the
    /// worker-panic primitive and surfaced through [`ServiceHealth`].
    fault_plan: Option<Arc<FaultPlan>>,
    /// Lifetime count of stolen items, service-wide.
    steals: AtomicU64,
    /// Lifetime count of caught worker panics, service-wide.
    worker_panics: AtomicU64,
    /// Lifetime count of sampler respawns from the prototype, service-wide.
    respawns: AtomicU64,
    /// Lifetime count of item retries (each respawn retries its item once).
    item_retries: AtomicU64,
    /// Items executed per worker (index = worker id), lifetime.
    worker_items: Vec<AtomicU64>,
    /// Stolen items executed per worker (index = worker id), lifetime.
    worker_steals: Vec<AtomicU64>,
    /// When set, [`post_outcome`] releases the backpressure slot *after*
    /// publishing the finished board instead of inside the board critical
    /// section — deliberately re-introducing the `try_submit` race fixed in
    /// the backpressure rework, so the model checker can demonstrate it
    /// finds the bug. See [`SamplerService::debug_reintroduce_slot_release_race`].
    racy_slot_release: AtomicBool,
}

/// A point-in-time health snapshot of a [`SamplerService`], taken with
/// [`SamplerService::health`].
///
/// The lifetime counters are monotone; the pool and queue fields describe
/// the instant of the snapshot. A healthy undisturbed service reports
/// `alive_workers == configured_workers` and zeros everywhere else once the
/// queue drains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceHealth {
    /// Worker threads the service was configured with.
    pub configured_workers: usize,
    /// Workers currently alive (configured minus those that exhausted their
    /// respawn budget and left the pool).
    pub alive_workers: usize,
    /// Lifetime count of caught worker panics.
    pub worker_panics: u64,
    /// Lifetime count of sampler respawns from the retained prototype.
    pub respawns: u64,
    /// Lifetime count of item-level retries (one per respawn).
    pub item_retries: u64,
    /// Faults injected so far by the installed [`FaultPlan`] (0 when none
    /// is installed).
    pub faults_injected: u64,
    /// Admitted-but-not-yet-completed requests at snapshot time.
    pub pending_requests: usize,
    /// Work items sitting in the per-worker deques at snapshot time.
    pub queued_items: usize,
}

impl ServiceHealth {
    /// `true` when every configured worker is still alive.
    pub fn at_full_strength(&self) -> bool {
        self.alive_workers == self.configured_workers
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().expect("a sampler service worker panicked")
}

/// A long-lived sampling service: a persistent pool of worker threads, each
/// owning one clone of a prepared sampler, scheduling per-sample work items
/// through work-stealing deques and answering typed [`SampleRequest`]s with
/// index-ordered, bit-deterministic [`SampleResponse`]s.
///
/// See the [module documentation](self) for the design and the determinism
/// contract. Dropping the service completes every admitted request, then
/// stops and joins the workers; outstanding [`ResponseHandle`]s remain
/// usable after the drop.
pub struct SamplerService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for SamplerService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplerService")
            .field("workers", &self.workers.len())
            .field("queue_capacity", &self.shared.queue_capacity)
            .field("steals", &self.steals())
            .finish()
    }
}

impl SamplerService {
    /// Spawns a service over `prototype`, clamping a zero worker count to 1
    /// for back-compatibility — prefer [`SamplerService::try_new`], which
    /// rejects it with a typed error instead.
    pub fn new<S>(prototype: S, config: ServiceConfig) -> Self
    where
        S: WitnessSampler + Clone + Send + Sync + 'static,
    {
        let config = config.with_workers(config.workers.max(1));
        Self::try_with_fault_plan(prototype, config, None)
            .expect("a clamped service configuration is always valid")
    }

    /// Spawns a service over `prototype`, rejecting an invalid
    /// [`ServiceConfig`] with a typed [`ServiceConfigError`].
    ///
    /// Each of the `config.workers` threads clones the prepared prototype
    /// exactly once at spawn — the one-off cost the persistent pool design
    /// amortises over every subsequent request. The prototype itself is
    /// retained (behind an [`Arc`]) so a worker whose sampler panics can
    /// respawn a fresh clone (see the module docs' *Robustness* section).
    pub fn try_new<S>(prototype: S, config: ServiceConfig) -> Result<Self, ServiceConfigError>
    where
        S: WitnessSampler + Clone + Send + Sync + 'static,
    {
        Self::try_with_fault_plan(prototype, config, None)
    }

    /// [`SamplerService::try_new`] with a chaos-testing [`FaultPlan`]
    /// installed: the plan's worker-panic primitive is consulted before
    /// every item, and its counters feed [`SamplerService::health`]. The
    /// plan does **not** reach into the samplers here — install it on the
    /// prototype (e.g. [`crate::SamplerBuilder::fault_plan`]) before
    /// constructing the service to fault the solver layer too.
    pub fn try_with_fault_plan<S>(
        prototype: S,
        config: ServiceConfig,
        fault_plan: Option<Arc<FaultPlan>>,
    ) -> Result<Self, ServiceConfigError>
    where
        S: WitnessSampler + Clone + Send + Sync + 'static,
    {
        config.validate()?;
        let workers = config.workers;
        let shared = Arc::new(Shared {
            sched: Mutex::new(Sched {
                deques: (0..workers).map(|_| VecDeque::new()).collect(),
                in_flight: 0,
                shutdown: false,
                alive: workers,
            }),
            work_available: Condvar::new(),
            admission: Condvar::new(),
            queue_capacity: config.queue_capacity.max(1),
            max_respawns: config.max_respawns,
            fault_plan,
            steals: AtomicU64::new(0),
            worker_panics: AtomicU64::new(0),
            respawns: AtomicU64::new(0),
            item_retries: AtomicU64::new(0),
            worker_items: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            worker_steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            racy_slot_release: AtomicBool::new(false),
        });
        // One retained prototype for the whole pool: each worker clones its
        // private sampler (own incremental solver) from it at spawn, and
        // again after a caught panic (bounded by `max_respawns`).
        let prototype = Arc::new(prototype);
        let handles = (0..workers)
            .map(|me| {
                let prototype = Arc::clone(&prototype);
                let shared = Arc::clone(&shared);
                conc::thread::spawn(move || run_worker(prototype, shared, me))
            })
            .collect();
        Ok(SamplerService {
            shared,
            workers: handles,
        })
    }

    /// Submits a request, blocking while the bounded request queue is at
    /// capacity, and returns a streaming [`ResponseHandle`].
    pub fn submit(&self, request: SampleRequest) -> ResponseHandle {
        let mut sched = lock(&self.shared.sched);
        while sched.in_flight >= self.shared.queue_capacity {
            sched = self
                .shared
                .admission
                .wait(sched)
                .expect("a sampler service worker panicked");
        }
        self.admit(sched, request)
    }

    /// Submits a request without blocking: if the bounded request queue is
    /// at capacity, the request is handed back inside
    /// [`TrySubmitError::QueueFull`] for the caller to retry — idempotently,
    /// thanks to the determinism contract.
    pub fn try_submit(&self, request: SampleRequest) -> Result<ResponseHandle, TrySubmitError> {
        let sched = lock(&self.shared.sched);
        if sched.in_flight >= self.shared.queue_capacity {
            return Err(TrySubmitError::QueueFull { request });
        }
        Ok(self.admit(sched, request))
    }

    /// Admits `request` under the scheduler lock: deals its indices into the
    /// per-worker deques in contiguous chunks (the same initial shape as the
    /// old static partition — stealing, not the deal, is what absorbs skew)
    /// and wakes the pool.
    fn admit(&self, mut sched: MutexGuard<'_, Sched>, request: SampleRequest) -> ResponseHandle {
        let now = Instant::now();
        // A dead pool (every worker exhausted its respawn budget) runs
        // nothing: the request completes immediately as all-`Faulted`
        // instead of queueing forever. [`SamplerService::health`] shows how
        // the pool got here.
        let dead_pool = sched.alive == 0;
        let complete_now = request.count == 0 || dead_pool;
        let state = Arc::new(RequestState {
            request,
            submitted_at: now,
            deadline: request.budget.map(|b| now + b),
            board: Mutex::new(Board {
                slots: if dead_pool {
                    vec![Some(SampleOutcome::faulted(SampleStats::default())); request.count]
                } else {
                    vec![None; request.count]
                },
                completed: if dead_pool { request.count } else { 0 },
                finished_at: complete_now.then_some(now),
            }),
            ready: Condvar::new(),
        });
        if complete_now {
            // Nothing to schedule; the request never occupies a queue slot.
            return ResponseHandle { state, cursor: 0 };
        }
        sched.in_flight += 1;
        let workers = sched.deques.len();
        let chunk = request.count.div_ceil(workers);
        for index in 0..request.count {
            sched.deques[index / chunk].push_back(Item {
                request: Arc::clone(&state),
                index,
            });
        }
        drop(sched);
        self.shared.work_available.notify_all();
        ResponseHandle { state, cursor: 0 }
    }

    /// Returns the number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Returns the request-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_capacity
    }

    /// Returns the number of admitted-but-not-yet-completed requests.
    pub fn pending_requests(&self) -> usize {
        lock(&self.shared.sched).in_flight
    }

    /// Lifetime count of work items an idle worker stole from another
    /// worker's deque.
    pub fn steals(&self) -> u64 {
        self.shared.steals.load(Ordering::Relaxed)
    }

    /// Lifetime count of work items executed per worker (indexed by worker
    /// id). Under skewed per-sample cost the *item* counts are legitimately
    /// unbalanced — fast workers execute more items; that is the scheduler
    /// doing its job.
    pub fn worker_items(&self) -> Vec<u64> {
        self.shared
            .worker_items
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Lifetime count of *stolen* items executed per worker (indexed by
    /// worker id).
    pub fn worker_steals(&self) -> Vec<u64> {
        self.shared
            .worker_steals
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Takes a point-in-time [`ServiceHealth`] snapshot: pool strength,
    /// respawn/panic/retry counters, injected-fault count, and queue depth.
    pub fn health(&self) -> ServiceHealth {
        let sched = lock(&self.shared.sched);
        ServiceHealth {
            configured_workers: self.workers.len(),
            alive_workers: sched.alive,
            worker_panics: self.shared.worker_panics.load(Ordering::Relaxed),
            respawns: self.shared.respawns.load(Ordering::Relaxed),
            item_retries: self.shared.item_retries.load(Ordering::Relaxed),
            faults_injected: self
                .shared
                .fault_plan
                .as_ref()
                .map(|plan| plan.faults_injected())
                .unwrap_or(0),
            pending_requests: sched.in_flight,
            queued_items: sched.deques.iter().map(VecDeque::len).sum(),
        }
    }

    /// Completes every admitted request, then stops and joins the workers.
    /// Equivalent to dropping the service, but explicit at call sites that
    /// want the drain to be visible.
    pub fn shutdown(self) {
        drop(self);
    }

    /// Test-only regression hook: re-introduces the `try_submit`
    /// backpressure race that was fixed by moving the queue-slot release
    /// into the board critical section of [`post_outcome`]. With the flag
    /// set, a completing worker publishes the finished board (waking
    /// `wait()`ers) *before* decrementing `in_flight`, so a caller that
    /// observed completion can still get a spurious
    /// [`TrySubmitError::QueueFull`].
    ///
    /// Exists so the model-checked protocol tests can prove the checker
    /// actually finds this class of bug (`#[cfg(test)]` would not be
    /// visible from integration tests, hence `#[doc(hidden)]`). Never call
    /// this outside a test.
    #[doc(hidden)]
    pub fn debug_reintroduce_slot_release_race(&self) {
        self.shared.racy_slot_release.store(true, Ordering::Relaxed);
    }
}

impl Drop for SamplerService {
    fn drop(&mut self) {
        lock(&self.shared.sched).shutdown = true;
        self.shared.work_available.notify_all();
        for handle in self.workers.drain(..) {
            let result = handle.join();
            // When the service is torn down by an unwinding thread (a failed
            // test assertion, or a model-checker abort), a second panic here
            // would escalate to a process abort and mask the original
            // failure; the join itself still happened either way.
            if !std::thread::panicking() {
                result.expect("a sampler service worker panicked");
            }
        }
    }
}

/// The worker loop: pop the own deque from the front; failing that, steal
/// from the back of the longest other deque; failing that, sleep until work
/// arrives (or exit once shutdown is flagged and every deque is dry — so a
/// dropped service always drains the requests it admitted).
///
/// A caught sampler panic respawns this worker's sampler from the retained
/// prototype and retries the item on its re-derived RNG stream — up to
/// `max_respawns` times over the worker's lifetime, after which the item
/// completes as `Faulted` and the worker leaves the pool for good (see
/// [`leave_pool`]).
fn run_worker<S>(prototype: Arc<S>, shared: Arc<Shared>, me: usize)
where
    S: WitnessSampler + Clone,
{
    let mut sampler = (*prototype).clone();
    let mut respawns_left = shared.max_respawns;
    loop {
        let mut sched = lock(&shared.sched);
        let (item, stolen) = loop {
            if let Some(item) = sched.deques[me].pop_front() {
                break (item, false);
            }
            let victim = (0..sched.deques.len())
                .filter(|&w| w != me)
                .max_by_key(|&w| sched.deques[w].len());
            if let Some(victim) = victim {
                if let Some(item) = sched.deques[victim].pop_back() {
                    break (item, true);
                }
            }
            if sched.shutdown {
                return;
            }
            sched = shared
                .work_available
                .wait(sched)
                .expect("a sampler service submitter panicked");
        };
        drop(sched);

        shared.worker_items[me].fetch_add(1, Ordering::Relaxed);
        if stolen {
            shared.steals.fetch_add(1, Ordering::Relaxed);
            shared.worker_steals[me].fetch_add(1, Ordering::Relaxed);
        }

        let mut retries = 0usize;
        let mut pending = Some(item);
        while let Some(item) = pending.take() {
            match execute(&mut sampler, &shared, item, stolen, me, retries) {
                None => {}
                Some(item) => {
                    shared.worker_panics.fetch_add(1, Ordering::Relaxed);
                    if respawns_left == 0 {
                        // Respawn budget exhausted: complete the item as
                        // Faulted and leave the pool cleanly, so drop/join
                        // (and hence shutdown) never hangs or re-panics.
                        let queue_wait = Instant::now().duration_since(item.request.submitted_at);
                        post_outcome(
                            &shared,
                            &item,
                            failed_outcome(
                                OutcomeKind::Faulted,
                                SampleStats {
                                    queue_wait,
                                    steals: usize::from(stolen),
                                    retries,
                                    ..SampleStats::default()
                                },
                            ),
                        );
                        leave_pool(&shared);
                        return;
                    }
                    respawns_left -= 1;
                    shared.respawns.fetch_add(1, Ordering::Relaxed);
                    shared.item_retries.fetch_add(1, Ordering::Relaxed);
                    sampler = (*prototype).clone();
                    retries += 1;
                    pending = Some(item);
                }
            }
        }
    }
}

/// Runs one work item on this worker's sampler and posts the outcome to the
/// request's board. A panicking sampler is caught and the item handed back
/// (not posted) so [`run_worker`] can respawn the sampler and retry it —
/// the retry re-derives the same per-index RNG stream, so an absorbed panic
/// leaves the outcome bit-identical to an undisturbed run.
fn execute<S: WitnessSampler>(
    sampler: &mut S,
    shared: &Shared,
    item: Item,
    stolen: bool,
    me: usize,
    retries: usize,
) -> Option<Item> {
    let state = &item.request;
    let started = Instant::now();
    let queue_wait = started.duration_since(state.submitted_at);
    let outcome = if state.deadline.is_some_and(|deadline| started >= deadline) {
        // The request budget expired while this item was queued: complete it
        // as a typed interruption without touching the solver (see
        // `SampleRequest::budget` for the recoverability semantics).
        SampleOutcome::interrupted(SampleStats {
            queue_wait,
            steals: usize::from(stolen),
            retries,
            ..SampleStats::default()
        })
    } else {
        // The sampler is this worker's private state and is replaced from
        // the prototype if it panics, so unwind-safety is moot.
        let plan = shared.fault_plan.as_deref();
        let master_seed = state.request.master_seed;
        let index = item.index;
        let run = std::panic::AssertUnwindSafe(|| {
            if plan.is_some_and(|plan| plan.should_panic_worker(me, index)) {
                panic!("injected worker panic (worker {me}, item {index})");
            }
            let mut rng = stream_for_index(master_seed, index);
            sampler.sample(&mut rng)
        });
        match std::panic::catch_unwind(run) {
            Ok(mut outcome) => {
                outcome.stats.queue_wait = queue_wait;
                outcome.stats.steals = usize::from(stolen);
                outcome.stats.retries += retries;
                outcome
            }
            Err(_payload) => return Some(item),
        }
    };
    post_outcome(shared, &item, outcome);
    None
}

/// Posts one outcome to its request's board and, on the last one, releases
/// the request's queue slot.
fn post_outcome(shared: &Shared, item: &Item, outcome: SampleOutcome) {
    let state = &item.request;
    let mut board = lock(&state.board);
    debug_assert!(board.slots[item.index].is_none(), "index scheduled twice");
    board.slots[item.index] = Some(outcome);
    board.completed += 1;
    let complete = board.completed == state.request.count;
    let racy = complete && shared.racy_slot_release.load(Ordering::Relaxed);
    if complete {
        board.finished_at = Some(Instant::now());
        if !racy {
            // Release the queue slot while the board lock is still held: a
            // client that returns from `wait` may immediately retry a
            // rejected request (the documented backpressure idiom), so the
            // slot must be observably free by the time the finished board is
            // visible. The board → sched nesting here is the only place the
            // two locks nest, so the ordering is globally consistent.
            let mut sched = lock(&shared.sched);
            sched.in_flight -= 1;
            drop(sched);
        }
    }
    state.ready.notify_all();
    drop(board);
    if racy {
        // Deliberately broken ordering, enabled only by
        // `debug_reintroduce_slot_release_race`: the finished board is
        // already visible, so a `wait()`er can race ahead of this decrement
        // and observe a spuriously full queue.
        let mut sched = lock(&shared.sched);
        sched.in_flight -= 1;
        drop(sched);
    }
    if complete {
        shared.admission.notify_all();
    }
}

/// A worker whose respawn budget is exhausted leaves the pool: its current
/// item has already been completed as `Faulted`; if it was the *last* alive
/// worker, every queued item is completed as `Faulted` too (no one is left
/// to run them), so handles and submitters never hang on a dead pool. The
/// worker thread then returns normally — teardown joins it without
/// re-raising anything, so `shutdown` after total pool death cannot hang or
/// panic.
fn leave_pool(shared: &Shared) {
    let orphans: Vec<Item> = {
        let mut sched = lock(&shared.sched);
        sched.alive -= 1;
        if sched.alive == 0 {
            sched.deques.iter_mut().flat_map(|d| d.drain(..)).collect()
        } else {
            Vec::new()
        }
    };
    for item in orphans {
        let queue_wait = Instant::now().duration_since(item.request.submitted_at);
        post_outcome(
            shared,
            &item,
            SampleOutcome::faulted(SampleStats {
                queue_wait,
                ..SampleStats::default()
            }),
        );
    }
}

/// A streaming handle to one in-flight request.
///
/// The handle is a blocking iterator over the request's outcomes **in index
/// order**: `next` returns outcome `i` as soon as the completed prefix
/// reaches it. Streaming changes *when* the caller sees each outcome, never
/// *what* the outcome is — the sequence streamed out is the same
/// bit-identical (on projected witnesses) sequence
/// [`SampleResponse::outcomes`] would hold, prefix by prefix, so a consumer
/// that stops early has consumed exactly a prefix of the deterministic
/// reference sequence. [`ResponseHandle::wait`] collects the whole response
/// at once (including any outcomes already streamed).
///
/// The handle owns its slice of the request state: it keeps working after
/// the service is dropped (a dropped service drains admitted requests
/// first).
#[derive(Debug)]
#[must_use = "dropping the handle discards the request's outcomes"]
pub struct ResponseHandle {
    state: Arc<RequestState>,
    cursor: usize,
}

impl std::fmt::Debug for RequestState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestState")
            .field("request", &self.request)
            .finish()
    }
}

impl ResponseHandle {
    /// The request this handle answers.
    pub fn request(&self) -> SampleRequest {
        self.state.request
    }

    /// Number of outcomes completed so far (not necessarily a prefix — the
    /// iterator, by contrast, only releases the completed *prefix*).
    pub fn completed(&self) -> usize {
        lock(&self.state.board).completed
    }

    /// Non-blocking variant of the iterator step: returns the next
    /// index-ordered outcome if it has already completed, `None` otherwise
    /// (or when the request is exhausted).
    pub fn try_next(&mut self) -> Option<SampleOutcome> {
        if self.cursor >= self.state.request.count {
            return None;
        }
        let board = lock(&self.state.board);
        let outcome = board.slots[self.cursor].clone();
        if outcome.is_some() {
            self.cursor += 1;
        }
        outcome
    }

    /// Blocks until the whole request has completed and returns the full
    /// [`SampleResponse`] — including outcomes that were already streamed
    /// through the iterator.
    pub fn wait(self) -> SampleResponse {
        let mut board = lock(&self.state.board);
        while board.finished_at.is_none() {
            board = self
                .state
                .ready
                .wait(board)
                .expect("a sampler service worker panicked");
        }
        // Take, don't clone: `wait` consumes the only handle and every
        // worker is done with a finished board, so the slots can be moved
        // out without doubling peak memory on large responses.
        let outcomes: Vec<SampleOutcome> = board
            .slots
            .drain(..)
            .map(|slot| slot.expect("finished request has empty slots"))
            .collect();
        let finished_at = board.finished_at.expect("checked above");
        drop(board);
        let mut aggregate_stats = SampleStats::default();
        for outcome in &outcomes {
            aggregate_stats.accumulate(&outcome.stats);
        }
        SampleResponse {
            request: self.state.request,
            outcomes,
            aggregate_stats,
            round_trip: finished_at.duration_since(self.state.submitted_at),
        }
    }
}

impl Iterator for ResponseHandle {
    type Item = SampleOutcome;

    /// Blocks until outcome `cursor` completes, then returns it; `None` once
    /// the request is exhausted.
    fn next(&mut self) -> Option<SampleOutcome> {
        if self.cursor >= self.state.request.count {
            return None;
        }
        let mut board = lock(&self.state.board);
        loop {
            if let Some(outcome) = &board.slots[self.cursor] {
                self.cursor += 1;
                return Some(outcome.clone());
            }
            board = self
                .state
                .ready
                .wait(board)
                .expect("a sampler service worker panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    use rand::RngCore;
    use unigen_cnf::{CnfFormula, Var, XorClause};

    use crate::config::UniGenConfig;
    use crate::unigen::UniGen;

    fn formula_with_count(bits: usize, extra: usize) -> CnfFormula {
        let mut f = CnfFormula::new(bits + extra);
        for i in 0..extra {
            f.add_xor_clause(XorClause::new(
                [Var::new(i % bits), Var::new(bits + i)],
                false,
            ))
            .unwrap();
        }
        f.set_sampling_set((0..bits).map(Var::new)).unwrap();
        f
    }

    fn witnesses_of(outcomes: &[SampleOutcome]) -> Vec<Option<Vec<bool>>> {
        outcomes
            .iter()
            .map(|o| o.witness.as_ref().map(|w| w.values().to_vec()))
            .collect()
    }

    #[test]
    fn service_reproduces_sample_batch_at_any_worker_count() {
        use crate::WitnessSampler;
        let f = formula_with_count(10, 3);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let serial = prepared.clone().sample_batch(12, 0xabc);
        for workers in [1usize, 2, 5] {
            let service = SamplerService::new(
                prepared.clone(),
                ServiceConfig::default().with_workers(workers),
            );
            let response = service.submit(SampleRequest::new(12, 0xabc)).wait();
            assert_eq!(
                witnesses_of(&response.outcomes),
                witnesses_of(&serial),
                "workers = {workers} diverged from the serial reference"
            );
            assert_eq!(response.request.count, 12);
        }
    }

    #[test]
    fn empty_request_completes_immediately_without_a_queue_slot() {
        let f = formula_with_count(3, 0);
        let service = SamplerService::new(
            UniGen::new(&f, UniGenConfig::default()).unwrap(),
            ServiceConfig::default()
                .with_workers(2)
                .with_queue_capacity(1),
        );
        let response = service.submit(SampleRequest::new(0, 1)).wait();
        assert!(response.outcomes.is_empty());
        assert_eq!(service.pending_requests(), 0);
    }

    #[test]
    fn iterator_streams_the_index_ordered_prefix() {
        use crate::WitnessSampler;
        let f = formula_with_count(8, 2);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let serial = prepared.clone().sample_batch(9, 7);
        let service = SamplerService::new(prepared, ServiceConfig::default().with_workers(3));
        let streamed: Vec<SampleOutcome> = service.submit(SampleRequest::new(9, 7)).collect();
        assert_eq!(witnesses_of(&streamed), witnesses_of(&serial));
    }

    #[test]
    fn aggregate_stats_accumulates_every_outcome() {
        let f = formula_with_count(9, 1);
        let service = SamplerService::new(
            UniGen::new(&f, UniGenConfig::default()).unwrap(),
            ServiceConfig::default().with_workers(2),
        );
        let response = service.submit(SampleRequest::new(6, 3)).wait();
        let mut expected = SampleStats::default();
        for outcome in &response.outcomes {
            expected.accumulate(&outcome.stats);
        }
        assert_eq!(response.aggregate_stats, expected);
        assert!(response.aggregate_stats.bsat_calls >= 1);
        assert!(response.round_trip >= response.outcomes[0].stats.queue_wait);
    }

    #[test]
    fn expired_request_budget_yields_typed_interrupted_outcomes() {
        let f = formula_with_count(9, 1);
        let service = SamplerService::new(
            UniGen::new(&f, UniGenConfig::default()).unwrap(),
            ServiceConfig::default().with_workers(2),
        );
        // A zero budget is already expired when the first item starts: every
        // outcome is a typed interruption, distinguishable from a genuine ⊥.
        let response = service
            .submit(SampleRequest::new(5, 3).with_budget(Duration::ZERO))
            .wait();
        assert_eq!(response.outcomes.len(), 5);
        assert!(response
            .outcomes
            .iter()
            .all(|o| !o.is_success() && o.kind == OutcomeKind::Interrupted));
        assert_eq!(response.aggregate_stats.bsat_calls, 0);
    }

    /// A synthetic sampler whose per-index cost is adversarially skewed: the
    /// RNG streams listed in `expensive` (in the test, the whole first
    /// static chunk of the batch) burn a spin-loop, everything else is free.
    /// Each worker clone registers a counter of the expensive items it ran,
    /// so the test can assert the skew was spread across workers.
    struct SkewedSampler {
        expensive: Arc<HashSet<u64>>,
        spin: Duration,
        ran_expensive: Arc<AtomicUsize>,
        registry: Arc<Mutex<Vec<Arc<AtomicUsize>>>>,
    }

    impl SkewedSampler {
        fn new(expensive: HashSet<u64>, spin: Duration) -> Self {
            SkewedSampler {
                expensive: Arc::new(expensive),
                spin,
                ran_expensive: Arc::new(AtomicUsize::new(0)),
                registry: Arc::new(Mutex::new(Vec::new())),
            }
        }
    }

    impl Clone for SkewedSampler {
        fn clone(&self) -> Self {
            let counter = Arc::new(AtomicUsize::new(0));
            self.registry.lock().unwrap().push(Arc::clone(&counter));
            SkewedSampler {
                expensive: Arc::clone(&self.expensive),
                spin: self.spin,
                ran_expensive: counter,
                registry: Arc::clone(&self.registry),
            }
        }
    }

    impl WitnessSampler for SkewedSampler {
        fn sample(&mut self, rng: &mut dyn RngCore) -> SampleOutcome {
            if self.expensive.contains(&rng.next_u64()) {
                self.ran_expensive.fetch_add(1, Ordering::Relaxed);
                let end = Instant::now() + self.spin;
                while Instant::now() < end {
                    std::hint::spin_loop();
                }
            }
            SampleOutcome::bottom(SampleStats::default())
        }

        fn name(&self) -> &'static str {
            "Skewed"
        }
    }

    /// Work-stealing fairness: with every expensive sample concentrated in
    /// the first worker's chunk, idle workers must steal the skew away
    /// instead of letting one deque serialise the batch (which is exactly
    /// what the old static partition did).
    #[test]
    fn stealing_spreads_an_adversarially_skewed_chunk() {
        const COUNT: usize = 64;
        const EXPENSIVE: usize = 16;
        const WORKERS: usize = 4;
        let seed = 0x5eed;
        // With 4 workers and 64 samples the first contiguous chunk is
        // indices 0..16 — make exactly those expensive. The sampler only
        // sees the RNG stream, so identify an index by its stream's first
        // draw (streams are disjoint by the SplitMix64 mix).
        let expensive: HashSet<u64> = (0..EXPENSIVE)
            .map(|i| stream_for_index(seed, i).next_u64())
            .collect();
        assert_eq!(
            expensive.len(),
            EXPENSIVE,
            "stream collision in the test setup"
        );
        let prototype = SkewedSampler::new(expensive, Duration::from_millis(3));
        let registry = Arc::clone(&prototype.registry);

        let service = SamplerService::new(
            prototype,
            ServiceConfig::default()
                .with_workers(WORKERS)
                .with_queue_capacity(1),
        );
        let response = service.submit(SampleRequest::new(COUNT, seed)).wait();
        assert_eq!(response.outcomes.len(), COUNT);

        // The scheduler stole, and the per-sample counters surfaced it.
        let steals = response.aggregate_stats.steals;
        assert!(steals >= 4, "only {steals} items were stolen");
        assert_eq!(service.steals(), steals as u64);
        assert_eq!(service.worker_steals().iter().sum::<u64>(), steals as u64);
        assert_eq!(service.worker_items().iter().sum::<u64>(), COUNT as u64);

        // Fairness: no single worker ran the lion's share of the expensive
        // chunk (static chunking pins all 16 to worker 0).
        let per_worker: Vec<usize> = registry
            .lock()
            .unwrap()
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        assert_eq!(per_worker.len(), WORKERS);
        assert_eq!(per_worker.iter().sum::<usize>(), EXPENSIVE);
        let max = per_worker.iter().copied().max().unwrap();
        assert!(
            max <= EXPENSIVE - 4,
            "expensive items stayed serialised on one worker: {per_worker:?}"
        );
    }

    #[test]
    fn try_submit_backpressure_hands_the_request_back() {
        // A gated sampler: every sample blocks until the test opens the gate,
        // so the queue-full window is deterministic, not timing-dependent.
        #[derive(Clone)]
        struct Gated {
            gate: Arc<(Mutex<bool>, Condvar)>,
        }
        impl WitnessSampler for Gated {
            fn sample(&mut self, _rng: &mut dyn RngCore) -> SampleOutcome {
                let (lock, condvar) = &*self.gate;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = condvar.wait(open).unwrap();
                }
                SampleOutcome::bottom(SampleStats::default())
            }
            fn name(&self) -> &'static str {
                "Gated"
            }
        }

        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let service = SamplerService::new(
            Gated {
                gate: Arc::clone(&gate),
            },
            ServiceConfig::default()
                .with_workers(1)
                .with_queue_capacity(1),
        );
        let first = service.submit(SampleRequest::new(2, 1));
        // The queue (capacity 1) now holds the blocked request: a second
        // submission must be rejected and returned verbatim.
        let rejected = service.try_submit(SampleRequest::new(3, 2));
        match rejected {
            Err(TrySubmitError::QueueFull { request }) => {
                assert_eq!(request, SampleRequest::new(3, 2));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
        // Open the gate; the first request drains and capacity frees up.
        {
            let (lock, condvar) = &*gate;
            *lock.lock().unwrap() = true;
            condvar.notify_all();
        }
        let response = first.wait();
        assert_eq!(response.outcomes.len(), 2);
        let retried = service.try_submit(SampleRequest::new(3, 2));
        assert!(retried.is_ok(), "capacity did not free after completion");
        assert_eq!(retried.unwrap().wait().outcomes.len(), 3);
    }

    #[test]
    fn panicking_sampler_never_strands_clients_and_shutdown_does_not_hang() {
        #[derive(Clone)]
        struct Panicky;
        impl WitnessSampler for Panicky {
            fn sample(&mut self, _rng: &mut dyn RngCore) -> SampleOutcome {
                panic!("sampler exploded");
            }
            fn name(&self) -> &'static str {
                "Panicky"
            }
        }

        let service = SamplerService::new(
            Panicky,
            ServiceConfig::default()
                .with_workers(1)
                .with_queue_capacity(1)
                .with_max_respawns(1),
        );
        // The single worker panics on item 0, respawns once, panics again,
        // completes the item as Faulted, and — being the last alive worker —
        // drains items 1 and 2 as Faulted too. wait() must return, not hang.
        let response = service.submit(SampleRequest::new(3, 1)).wait();
        assert_eq!(response.outcomes.len(), 3);
        assert!(response
            .outcomes
            .iter()
            .all(|o| !o.is_success() && o.kind == OutcomeKind::Faulted));
        // The queue slot was released and the dead pool answers later
        // requests immediately with all-Faulted responses.
        assert_eq!(service.pending_requests(), 0);
        let response = service.submit(SampleRequest::new(2, 9)).wait();
        assert_eq!(response.outcomes.len(), 2);
        assert!(response
            .outcomes
            .iter()
            .all(|o| !o.is_success() && o.kind == OutcomeKind::Faulted));
        // The health snapshot records the carnage.
        let health = service.health();
        assert_eq!(health.alive_workers, 0);
        assert!(!health.at_full_strength());
        assert_eq!(health.worker_panics, 2);
        assert_eq!(health.respawns, 1);
        // Satellite regression: shutting down a service whose entire pool
        // died must return cleanly — no hang, no re-raised panic at join.
        let teardown = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            service.shutdown();
        }));
        assert!(
            teardown.is_ok(),
            "shutdown after total pool death must not panic or hang"
        );
    }

    #[test]
    fn zero_workers_is_rejected_with_a_typed_error() {
        let f = formula_with_count(3, 0);
        let sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let err =
            SamplerService::try_new(sampler.clone(), ServiceConfig::default().with_workers(0))
                .expect_err("zero workers must be rejected");
        assert_eq!(err, ServiceConfigError::ZeroWorkers);
        // The legacy constructor keeps its documented clamp-to-one.
        let service = SamplerService::new(sampler, ServiceConfig::default().with_workers(0));
        assert_eq!(service.health().configured_workers, 1);
    }

    #[test]
    fn injected_worker_panic_respawns_and_reproduces_the_batch() {
        use crate::WitnessSampler;
        let f = formula_with_count(10, 3);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let serial = prepared.clone().sample_batch(8, 0xfee1);
        // Worker 0 is scheduled to panic exactly once, on item 3. A single
        // worker keeps the schedule deterministic: with more workers the
        // item could be stolen and executed elsewhere, and the panic would
        // never fire.
        let plan = Arc::new(FaultPlan::seeded(0x9).panic_worker_at(0, 3));
        let service = SamplerService::try_with_fault_plan(
            prepared,
            ServiceConfig::default().with_workers(1),
            Some(Arc::clone(&plan)),
        )
        .unwrap();
        let response = service.submit(SampleRequest::new(8, 0xfee1)).wait();
        // The respawned sampler re-derived item 3's stream, so the batch is
        // bit-identical to the undisturbed serial reference.
        assert_eq!(witnesses_of(&response.outcomes), witnesses_of(&serial));
        let health = service.health();
        assert_eq!(health.worker_panics, 1);
        assert_eq!(health.respawns, 1);
        assert_eq!(health.item_retries, 1);
        assert_eq!(health.faults_injected, 1);
        assert_eq!(health.alive_workers, 1);
        assert!(health.at_full_strength());
        assert_eq!(plan.faults_injected(), 1);
        // The retried item carries its retry count in the per-sample stats.
        assert_eq!(response.aggregate_stats.retries, 1);
    }

    #[test]
    fn handle_survives_service_drop() {
        use crate::WitnessSampler;
        let f = formula_with_count(6, 1);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let serial = prepared.clone().sample_batch(6, 11);
        let service = SamplerService::new(prepared, ServiceConfig::default().with_workers(2));
        let handle = service.submit(SampleRequest::new(6, 11));
        // Dropping the service drains the admitted request before joining.
        service.shutdown();
        let response = handle.wait();
        assert_eq!(witnesses_of(&response.outcomes), witnesses_of(&serial));
    }

    #[test]
    fn concurrent_interleaved_requests_stay_per_request_deterministic() {
        use crate::WitnessSampler;
        let f = formula_with_count(9, 2);
        let prepared = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let serial_a = prepared.clone().sample_batch(7, 100);
        let serial_b = prepared.clone().sample_batch(5, 200);
        let serial_c = prepared.clone().sample_batch(9, 300);
        let service = SamplerService::new(
            prepared,
            ServiceConfig::default()
                .with_workers(3)
                .with_queue_capacity(8),
        );
        // Submit everything before collecting anything: the three requests
        // interleave arbitrarily across the pool.
        let ha = service.submit(SampleRequest::new(7, 100));
        let hb = service.submit(SampleRequest::new(5, 200));
        let hc = service.submit(SampleRequest::new(9, 300));
        assert_eq!(witnesses_of(&hc.wait().outcomes), witnesses_of(&serial_c));
        assert_eq!(witnesses_of(&ha.wait().outcomes), witnesses_of(&serial_a));
        assert_eq!(witnesses_of(&hb.wait().outcomes), witnesses_of(&serial_b));
    }
}
