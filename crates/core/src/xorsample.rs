//! XORSample′ — the NIPS 2007 near-uniform sampler that requires a
//! user-supplied hash width.
//!
//! XORSample′ predates both UniWit and UniGen and illustrates the usability
//! problem the later systems solve: the number of xor constraints `m` must be
//! supplied by the user and should be close to `log2 |R_F|`, a quantity the
//! user rarely knows. With a good `m` the sampler is near-uniform; with a bad
//! one it either fails constantly (cells are usually empty) or degenerates
//! towards the solver's default solution order (cells are huge). The paper
//! leaves it out of Table 1 because UniWit dominates it; it is kept here for
//! the ablation benchmarks and for completeness of the historical lineage.

use std::sync::Arc;
use std::time::Instant;

use rand::{Rng, RngCore};

use unigen_cnf::{CnfFormula, Var};
use unigen_hashing::XorHashFamily;
use unigen_satsolver::{enumerate_cell, Budget, Solver};

use crate::error::SamplerError;
use crate::sampler::{failed_outcome, OutcomeKind, SampleOutcome, SampleStats, WitnessSampler};

/// Configuration of [`XorSamplePrime`].
#[derive(Debug, Clone, PartialEq)]
pub struct XorSamplePrimeConfig {
    /// Number of xor constraints to add — the "difficult-to-estimate input
    /// parameter" the paper refers to. Should be close to `log2 |R_F|`.
    pub num_constraints: usize,
    /// Upper bound on the number of witnesses enumerated from the surviving
    /// cell before giving up (protects against a hopelessly small
    /// `num_constraints`).
    pub cell_cap: usize,
    /// Budget for each underlying solver call.
    pub bsat_budget: Budget,
}

impl Default for XorSamplePrimeConfig {
    fn default() -> Self {
        XorSamplePrimeConfig {
            num_constraints: 8,
            cell_cap: 256,
            bsat_budget: Budget::new(),
        }
    }
}

/// The XORSample′ witness generator.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use unigen::{WitnessSampler, XorSamplePrime, XorSamplePrimeConfig};
/// use unigen_cnf::{CnfFormula, Lit};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut f = CnfFormula::new(6);
/// f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])?;
/// let config = XorSamplePrimeConfig { num_constraints: 2, ..Default::default() };
/// let mut sampler = XorSamplePrime::new(&f, config)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// // With a sensible `num_constraints` most attempts succeed.
/// let outcome = sampler.sample(&mut rng);
/// if let Some(w) = outcome.witness {
///     assert!(f.evaluate(&w));
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct XorSamplePrime {
    /// The full support `X`, shared cheaply with every parallel worker clone.
    support: Arc<[Var]>,
    family: XorHashFamily,
    config: XorSamplePrimeConfig,
    /// The one incremental solver reused across samples (hash layers and
    /// blocking clauses are guard-scoped per sample).
    solver: Solver,
}

impl XorSamplePrime {
    /// Creates an XORSample′ sampler for `formula`.
    ///
    /// # Errors
    ///
    /// Returns [`SamplerError::EmptySamplingSet`] if the formula has no
    /// variables.
    pub fn new(formula: &CnfFormula, config: XorSamplePrimeConfig) -> Result<Self, SamplerError> {
        if formula.num_vars() == 0 {
            return Err(SamplerError::EmptySamplingSet);
        }
        let support: Vec<Var> = (0..formula.num_vars()).map(Var::new).collect();
        Ok(XorSamplePrime {
            family: XorHashFamily::new(support.clone()),
            support: support.into(),
            config,
            solver: Solver::from_formula(formula),
        })
    }
}

impl WitnessSampler for XorSamplePrime {
    fn sample(&mut self, rng: &mut dyn RngCore) -> SampleOutcome {
        let started = Instant::now();
        let mut stats = SampleStats::default();

        // Audit note (first-acceptance / empty-window): XORSample′ tries a
        // single user-supplied width, so there is no scan to overshoot; the
        // width itself is clamped into the representable range `1..=|X|`
        // here, so the window can never be silently empty.
        let width = self.config.num_constraints.max(1).min(self.support.len());
        let hash = self.family.sample(width, rng);
        let clauses = hash.to_xor_clauses();
        stats.xor_clauses_added += clauses.len();
        stats.xor_vars_total += clauses.iter().map(|c| c.len()).sum::<usize>();

        let before = *self.solver.stats();
        let outcome = enumerate_cell(
            &mut self.solver,
            &self.support,
            &clauses,
            self.config.cell_cap + 1,
            &self.config.bsat_budget,
        );
        stats.solver_propagations += self.solver.stats().propagations - before.propagations;
        stats.solver_conflicts += self.solver.stats().conflicts - before.conflicts;
        stats.bsat_calls += 1;
        stats.wall_time = started.elapsed();

        // An interruption fails the sample but is reported as such: unlike
        // an empty or oversized cell it says nothing about whether the
        // chosen width was sensible.
        if let Some(reason) = outcome.interrupted {
            stats.interrupted_cells += 1;
            let kind = if reason.is_fault() {
                OutcomeKind::Faulted
            } else {
                OutcomeKind::Interrupted
            };
            return failed_outcome(kind, stats);
        }
        // Empty and oversized cells are definite ⊥ outcomes: without an
        // estimate of |R_F| there is no way to tell whether the chosen width
        // was sensible.
        if outcome.is_empty() || outcome.len() > self.config.cell_cap {
            return SampleOutcome::bottom(stats);
        }
        // Canonical order first, so the uniform pick is independent of solver
        // heuristic state (the parallel determinism contract).
        let mut cell = outcome.witnesses;
        crate::sampler::sort_witnesses_canonically(&mut cell, &self.support);
        let witness = cell[rng.gen_range(0..cell.len())].clone();
        SampleOutcome::of_witness(witness, stats)
    }

    fn name(&self) -> &'static str {
        "XORSample'"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unigen_cnf::Lit;

    fn wide_formula(bits: usize) -> CnfFormula {
        let mut f = CnfFormula::new(bits);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        f
    }

    #[test]
    fn reasonable_width_produces_witnesses() {
        let f = wide_formula(10);
        let config = XorSamplePrimeConfig {
            num_constraints: 4,
            ..Default::default()
        };
        let mut sampler = XorSamplePrime::new(&f, config).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let successes = (0..10)
            .filter(|_| {
                let outcome = sampler.sample(&mut rng);
                outcome
                    .witness
                    .map(|w| {
                        assert!(f.evaluate(&w));
                        true
                    })
                    .unwrap_or(false)
            })
            .count();
        assert!(successes >= 5, "only {successes}/10 succeeded");
    }

    #[test]
    fn excessive_width_mostly_fails() {
        // 10 constraints over a space of ~2^10·0.75 witnesses leaves cells
        // empty most of the time — the classic mis-parameterisation.
        let f = wide_formula(10);
        let config = XorSamplePrimeConfig {
            num_constraints: 10,
            ..Default::default()
        };
        let mut sampler = XorSamplePrime::new(&f, config).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let successes = (0..10)
            .filter(|_| sampler.sample(&mut rng).is_success())
            .count();
        assert!(successes <= 8, "an oversized width should fail regularly");
    }

    #[test]
    fn empty_formula_is_rejected() {
        let f = CnfFormula::new(0);
        assert!(XorSamplePrime::new(&f, XorSamplePrimeConfig::default()).is_err());
    }
}
