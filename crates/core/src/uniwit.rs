//! UniWit — the CAV 2013 near-uniform generator used as the paper's main
//! comparison point.
//!
//! UniWit shares the hashing skeleton with UniGen but differs in the two ways
//! the paper identifies as the sources of its scalability limits:
//!
//! 1. **it hashes over the full support `X`**, so every xor clause has
//!    expected length `|X|/2` regardless of how small the independent
//!    support is, and
//! 2. **it has no amortisable preparation phase**: every sample performs its
//!    own sequential search for a hash width whose cell is small enough
//!    (the paper's experiments disable the guarantee-voiding "leap-frogging"
//!    shortcut, and so does this implementation).
//!
//! Its guarantee is correspondingly weaker: near-uniformity (a lower bound on
//! each witness's probability) with success probability ≥ 0.125.
//!
//! The cell-size window used here is the `[1, pivot]` acceptance test of the
//! CAV 2013 algorithm with the pivot expression shared with ApproxMC; the
//! exact constant does not affect the structural comparison (xor length and
//! per-sample search cost), which is what Tables 1 and 2 measure.

use std::sync::Arc;
use std::time::Instant;

use rand::{Rng, RngCore};

use unigen_cnf::{CnfFormula, Var};
use unigen_hashing::XorHashFamily;
use unigen_satsolver::{enumerate_cell, Budget, Solver};

use crate::error::SamplerError;
use crate::sampler::{failed_outcome, OutcomeKind, SampleOutcome, SampleStats, WitnessSampler};

/// Configuration of [`UniWit`].
#[derive(Debug, Clone, PartialEq)]
pub struct UniWitConfig {
    /// Largest cell size accepted when searching for a hash width.
    pub pivot: u64,
    /// Budget for each underlying solver call (the per-`BSAT` timeout of the
    /// paper's experiments).
    pub bsat_budget: Budget,
    /// Cap on the number of hash widths tried per sample; `None` means "up
    /// to the size of the support".
    pub max_width: Option<usize>,
}

impl Default for UniWitConfig {
    fn default() -> Self {
        UniWitConfig {
            pivot: 46,
            bsat_budget: Budget::new(),
            max_width: None,
        }
    }
}

/// The UniWit near-uniform witness generator.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use unigen::{UniWit, UniWitConfig, WitnessSampler};
/// use unigen_cnf::{CnfFormula, Lit};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut f = CnfFormula::new(3);
/// f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2), Lit::from_dimacs(3)])?;
/// let mut sampler = UniWit::new(&f, UniWitConfig::default())?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let outcome = sampler.sample(&mut rng);
/// assert!(outcome.witness.map(|w| f.evaluate(&w)).unwrap_or(true));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct UniWit {
    /// The full support `X`, shared cheaply with every parallel worker clone.
    support: Arc<[Var]>,
    family: XorHashFamily,
    config: UniWitConfig,
    /// The one incremental solver reused across samples; each hash layer and
    /// each `BSAT`'s blocking clauses live under a per-cell guard.
    solver: Solver,
}

impl UniWit {
    /// Creates a UniWit sampler for `formula`.
    ///
    /// # Errors
    ///
    /// Returns [`SamplerError::EmptySamplingSet`] if the formula has no
    /// variables.
    pub fn new(formula: &CnfFormula, config: UniWitConfig) -> Result<Self, SamplerError> {
        if formula.num_vars() == 0 {
            return Err(SamplerError::EmptySamplingSet);
        }
        // UniWit hashes over the full support, not the independent support —
        // this is precisely the difference the paper's comparison isolates.
        let support: Vec<Var> = (0..formula.num_vars()).map(Var::new).collect();
        Ok(UniWit {
            family: XorHashFamily::new(support.clone()),
            support: support.into(),
            config,
            solver: Solver::from_formula(formula),
        })
    }

    /// Returns the support used for hashing and blocking (always the full
    /// variable range).
    pub fn support(&self) -> &[Var] {
        &self.support
    }
}

impl WitnessSampler for UniWit {
    fn sample(&mut self, rng: &mut dyn RngCore) -> SampleOutcome {
        let started = Instant::now();
        let mut stats = SampleStats::default();
        let pivot = self.config.pivot as usize;
        // Clamp the width window into the representable range `1..=|X|`.
        // `max_width: Some(0)` would otherwise make `1..=0` empty and the
        // sampler would report `⊥` with zero hashing work — the same silent
        // empty-window failure mode fixed in UniGen's `collect_cell`.
        let configured = self
            .config
            .max_width
            .unwrap_or(self.support.len())
            .min(self.support.len());
        let max_width = configured.max(1);
        if configured == 0 {
            stats.width_window_clamped += 1;
        }

        // First check whether the formula itself already has few enough
        // witnesses (the degenerate case every hashing sampler handles
        // first). Guard-scoped, so the blocking clauses vanish afterwards.
        let before = *self.solver.stats();
        let base = enumerate_cell(
            &mut self.solver,
            &self.support,
            &[],
            pivot + 1,
            &self.config.bsat_budget,
        );
        stats.solver_propagations += self.solver.stats().propagations - before.propagations;
        stats.solver_conflicts += self.solver.stats().conflicts - before.conflicts;
        stats.bsat_calls += 1;
        if base.interrupted.is_some() {
            // An interrupted probe says nothing about the formula's size;
            // fall through to the width search rather than misreading the
            // partial enumeration as "small".
            stats.interrupted_cells += 1;
        } else if base.len() <= pivot {
            stats.wall_time = started.elapsed();
            if base.is_empty() {
                // The formula is unsatisfiable: a *definite* ⊥.
                return SampleOutcome::bottom(stats);
            }
            // Canonical order first: the accepted enumeration here is
            // exhaustive, so sorting makes the uniform pick independent
            // of solver heuristic state (the parallel determinism
            // contract).
            let mut cell = base.witnesses;
            crate::sampler::sort_witnesses_canonically(&mut cell, &self.support);
            let witness = cell[rng.gen_range(0..cell.len())].clone();
            return SampleOutcome::of_witness(witness, stats);
        }

        // Sequential search over hash widths, afresh for every sample.
        let mut failure = OutcomeKind::Bottom;
        for width in 1..=max_width {
            let hash = self.family.sample(width, rng);
            let clauses = hash.to_xor_clauses();
            stats.xor_clauses_added += clauses.len();
            stats.xor_vars_total += clauses.iter().map(|c| c.len()).sum::<usize>();

            let before = *self.solver.stats();
            let outcome = enumerate_cell(
                &mut self.solver,
                &self.support,
                &clauses,
                pivot + 1,
                &self.config.bsat_budget,
            );
            stats.solver_propagations += self.solver.stats().propagations - before.propagations;
            stats.solver_conflicts += self.solver.stats().conflicts - before.conflicts;
            stats.bsat_calls += 1;
            if let Some(reason) = outcome.interrupted {
                // An interrupted BSAT call fails this sample, as in the
                // paper's UniWit runs that produced "—" table entries — but
                // it is reported as *interrupted* (or faulted), not as the
                // definite ⊥ it used to be conflated with.
                stats.interrupted_cells += 1;
                failure = if reason.is_fault() {
                    OutcomeKind::Faulted
                } else {
                    OutcomeKind::Interrupted
                };
                break;
            }
            let size = outcome.len();
            if size >= 1 && size <= pivot {
                // First accepted width ends the search (audited against the
                // UniGen overshoot bug: this loop already returns here rather
                // than scanning on and overwriting the accepted cell).
                stats.wall_time = started.elapsed();
                let mut cell = outcome.witnesses;
                crate::sampler::sort_witnesses_canonically(&mut cell, &self.support);
                let witness = cell[rng.gen_range(0..size)].clone();
                return SampleOutcome::of_witness(witness, stats);
            }
            if size == 0 {
                // Overshot: the cell is empty, give up on this sample.
                break;
            }
        }

        stats.wall_time = started.elapsed();
        failed_outcome(failure, stats)
    }

    fn name(&self) -> &'static str {
        "UniWit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unigen_cnf::{Lit, XorClause};

    fn formula_with_count(bits: usize, extra: usize) -> CnfFormula {
        let mut f = CnfFormula::new(bits + extra);
        for i in 0..extra {
            f.add_xor_clause(XorClause::new(
                [Var::new(i % bits), Var::new(bits + i)],
                false,
            ))
            .unwrap();
        }
        f.set_sampling_set((0..bits).map(Var::new)).unwrap();
        f
    }

    #[test]
    fn produces_valid_witnesses() {
        let f = formula_with_count(8, 4);
        let mut sampler = UniWit::new(&f, UniWitConfig::default()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut successes = 0;
        for _ in 0..10 {
            if let Some(w) = sampler.sample(&mut rng).witness {
                assert!(f.evaluate(&w));
                successes += 1;
            }
        }
        assert!(successes >= 2, "UniWit succeeded only {successes}/10 times");
    }

    #[test]
    fn hashes_over_the_full_support() {
        let f = formula_with_count(4, 20);
        let mut sampler = UniWit::new(&f, UniWitConfig::default()).unwrap();
        assert_eq!(sampler.support().len(), 24);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut stats = SampleStats::default();
        for _ in 0..5 {
            stats.accumulate(&sampler.sample(&mut rng).stats);
        }
        if stats.xor_clauses_added > 0 {
            // Expected xor length is |X|/2 = 12, versus 2 when hashing over
            // the 4-variable independent support.
            assert!(stats.average_xor_length() > 6.0);
        }
    }

    #[test]
    fn small_formulas_short_circuit_without_hashing() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        let mut sampler = UniWit::new(&f, UniWitConfig::default()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let outcome = sampler.sample(&mut rng);
        assert!(outcome.is_success());
        assert_eq!(outcome.stats.xor_clauses_added, 0);
    }

    #[test]
    fn unsat_formula_reports_failure_not_panic() {
        let mut f = CnfFormula::new(1);
        f.add_clause([Lit::from_dimacs(1)]).unwrap();
        f.add_clause([Lit::from_dimacs(-1)]).unwrap();
        let mut sampler = UniWit::new(&f, UniWitConfig::default()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        assert!(!sampler.sample(&mut rng).is_success());
    }

    #[test]
    fn empty_formula_is_rejected() {
        let f = CnfFormula::new(0);
        assert!(matches!(
            UniWit::new(&f, UniWitConfig::default()),
            Err(SamplerError::EmptySamplingSet)
        ));
    }

    #[test]
    fn budget_interruption_is_typed_not_bottom() {
        // A step limit of zero interrupts every BSAT call immediately. The
        // sampler must report the sample as *interrupted*, not as the
        // definite ⊥ the pre-typed code returned for both conditions.
        let f = formula_with_count(8, 4);
        let config = UniWitConfig {
            bsat_budget: Budget::new().with_step_limit(0),
            ..UniWitConfig::default()
        };
        let mut sampler = UniWit::new(&f, config).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let outcome = sampler.sample(&mut rng);
        assert_eq!(outcome.kind, OutcomeKind::Interrupted);
        assert!(outcome.witness.is_none());
        // Both the base probe and the first width's call were interrupted.
        assert_eq!(outcome.stats.interrupted_cells, 2);
    }

    #[test]
    fn zero_max_width_is_clamped_not_silently_empty() {
        // 2^10·0.75 witnesses, far above the pivot, so the base short-circuit
        // does not fire and the sampler must enter the width search. With
        // `max_width: Some(0)` the search window used to be the empty range
        // `1..=0`: no hash was ever drawn and the sampler failed silently.
        let mut f = CnfFormula::new(10);
        f.add_clause([Lit::from_dimacs(1), Lit::from_dimacs(2)])
            .unwrap();
        let config = UniWitConfig {
            max_width: Some(0),
            ..UniWitConfig::default()
        };
        let mut sampler = UniWit::new(&f, config).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let outcome = sampler.sample(&mut rng);
        assert_eq!(outcome.stats.width_window_clamped, 1);
        assert!(
            outcome.stats.xor_clauses_added >= 1,
            "the clamped window must still draw at least one hash"
        );
    }
}
