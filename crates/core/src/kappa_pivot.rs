//! `ComputeKappaPivot` (Algorithm 2 of the paper).

use crate::error::SamplerError;

/// The pair computed by Algorithm 2: the cell-size tolerance κ and the
/// expected "small cell" size pivot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KappaPivot {
    /// Cell-size tolerance κ ∈ [0, 1).
    pub kappa: f64,
    /// Expected size of a small cell, `⌈3·e^{1/2}·(1 + 1/κ)²⌉`.
    pub pivot: u64,
}

impl KappaPivot {
    /// The high cell-size threshold `1 + (1 + κ)·pivot` (line 2 of
    /// Algorithm 1).
    pub fn hi_thresh(&self) -> f64 {
        1.0 + (1.0 + self.kappa) * self.pivot as f64
    }

    /// The low cell-size threshold `pivot / (1 + κ)` (line 3 of
    /// Algorithm 1).
    pub fn lo_thresh(&self) -> f64 {
        self.pivot as f64 / (1.0 + self.kappa)
    }

    /// The largest integer cell size accepted by the high threshold.
    pub fn hi_thresh_count(&self) -> usize {
        self.hi_thresh().floor() as usize
    }
}

/// The left-hand side of the ε–κ relation used by Algorithm 2:
/// `ε = (1 + κ)(2.23 + 0.48 / (1 − κ)²) − 1`.
fn epsilon_of_kappa(kappa: f64) -> f64 {
    (1.0 + kappa) * (2.23 + 0.48 / (1.0 - kappa).powi(2)) - 1.0
}

/// Computes κ and pivot from the tolerance ε (Algorithm 2).
///
/// The relation `ε(κ)` is strictly increasing on `[0, 1)` with `ε(0) = 1.71`,
/// so a solution exists exactly when `ε > 1.71`; it is found by bisection to
/// within `1e-12`.
///
/// # Errors
///
/// Returns [`SamplerError::EpsilonTooSmall`] when `ε ≤ 1.71`.
///
/// # Example
///
/// ```
/// use unigen::compute_kappa_pivot;
///
/// # fn main() -> Result<(), unigen::SamplerError> {
/// // The value used throughout the paper's experiments.
/// let kp = compute_kappa_pivot(6.0)?;
/// assert!(kp.kappa > 0.0 && kp.kappa < 1.0);
/// assert!(kp.pivot >= 17);
/// assert!(kp.hi_thresh() > kp.lo_thresh());
/// # Ok(())
/// # }
/// ```
pub fn compute_kappa_pivot(epsilon: f64) -> Result<KappaPivot, SamplerError> {
    // NaN must be rejected too, hence the explicit check rather than `<=`.
    if epsilon.is_nan() || epsilon <= 1.71 {
        return Err(SamplerError::epsilon_too_small(epsilon));
    }
    let mut lo = 0.0f64;
    let mut hi = 1.0 - 1e-9;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if epsilon_of_kappa(mid) < epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let kappa = 0.5 * (lo + hi);
    let pivot = (3.0 * std::f64::consts::E.sqrt() * (1.0 + 1.0 / kappa).powi(2)).ceil() as u64;
    Ok(KappaPivot { kappa, pivot })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_at_most_1_71_is_rejected() {
        assert!(compute_kappa_pivot(1.71).is_err());
        assert!(compute_kappa_pivot(1.0).is_err());
        assert!(compute_kappa_pivot(0.0).is_err());
        assert!(compute_kappa_pivot(f64::NAN).is_err());
        assert!(compute_kappa_pivot(1.7100001).is_ok());
    }

    #[test]
    fn kappa_solves_the_relation() {
        for epsilon in [1.72, 2.0, 3.0, 6.0, 10.0, 50.0] {
            let kp = compute_kappa_pivot(epsilon).unwrap();
            let back = epsilon_of_kappa(kp.kappa);
            assert!(
                (back - epsilon).abs() < 1e-6,
                "ε = {epsilon}: κ = {} maps back to {back}",
                kp.kappa
            );
        }
    }

    #[test]
    fn pivot_is_at_least_17() {
        // The appendix notes that the pivot expression guarantees pivot ≥ 17
        // (approached as ε → ∞, i.e. κ → 1).
        for epsilon in [1.72, 2.0, 6.0, 20.0, 1000.0] {
            let kp = compute_kappa_pivot(epsilon).unwrap();
            assert!(kp.pivot >= 17, "ε = {epsilon} gave pivot {}", kp.pivot);
        }
    }

    #[test]
    fn larger_epsilon_means_smaller_pivot() {
        // Looser tolerance → smaller cells suffice → cheaper BSAT calls; this
        // is the "knob" discussed at the end of Section 4.
        let small = compute_kappa_pivot(2.0).unwrap();
        let large = compute_kappa_pivot(16.0).unwrap();
        assert!(large.pivot < small.pivot);
        assert!(large.kappa > small.kappa);
    }

    #[test]
    fn thresholds_bracket_the_pivot() {
        let kp = compute_kappa_pivot(6.0).unwrap();
        assert!(kp.lo_thresh() < kp.pivot as f64);
        assert!(kp.hi_thresh() > kp.pivot as f64);
        assert_eq!(kp.hi_thresh_count(), kp.hi_thresh().floor() as usize);
    }

    #[test]
    fn epsilon_six_matches_hand_computation() {
        // For ε = 6 the solution is κ ≈ 0.547…, pivot = ⌈3√e (1+1/κ)²⌉ = 40.
        let kp = compute_kappa_pivot(6.0).unwrap();
        assert!((kp.kappa - 0.547).abs() < 0.01, "κ = {}", kp.kappa);
        assert_eq!(kp.pivot, 40);
    }
}
