//! The UniGen algorithm (Algorithm 1 of the paper).

use std::sync::Arc;
use std::time::Instant;

use rand::{Rng, RngCore};

use unigen_cnf::{CnfFormula, Model, Var, XorClause};
use unigen_counting::ApproxMc;
use unigen_hashing::XorHashFamily;
use unigen_satsolver::{
    enumerate_cell, EnumerationOutcome, FaultHook, GaussMode, InterruptReason, ProofLog, Solver,
    SolverConfig, SolverStats,
};

use crate::certify::Certifier;
use crate::config::UniGenConfig;
use crate::error::SamplerError;
use crate::fault::FaultPlan;
use crate::kappa_pivot::{compute_kappa_pivot, KappaPivot};
use crate::sampler::{failed_outcome, OutcomeKind, SampleOutcome, SampleStats, WitnessSampler};

/// What the one-off preparation phase (lines 1–11 of Algorithm 1) concluded
/// about the formula.
#[derive(Debug, Clone)]
pub enum PreparedMode {
    /// The formula has at most `hiThresh` witnesses (lines 5–7): they are all
    /// stored and sampling reduces to a uniform pick among them.
    Enumerated {
        /// Every witness of the formula (distinct on the sampling set), in
        /// canonical (projection) order. Shared via [`Arc`] so cloning a
        /// prepared sampler for a parallel worker does not copy the list.
        witnesses: Arc<[Model]>,
    },
    /// The general case (lines 9–11): an approximate count `C` fixed the
    /// candidate hash widths `{q−3,…,q}`.
    Hashed {
        /// The approximate model count returned by `ApproxMC(F, 0.8, 0.8)`.
        approx_count: u128,
        /// The upper end of the candidate hash-width window.
        q: usize,
    },
}

/// The UniGen almost-uniform witness generator.
///
/// Construction runs the *preparation* phase of Algorithm 1 (lines 1–11):
/// computing κ and pivot, probing whether the formula is small enough to
/// enumerate outright, and otherwise obtaining the approximate count that
/// pins down the candidate hash widths. Every subsequent [`UniGen::sample`]
/// call only runs the cheap per-witness part (lines 12–22), which is what
/// lets the cost of preparation be amortised over many samples — the
/// guarantee-preserving replacement for UniWit's "leap-frogging" discussed in
/// Section 4.
///
/// See the crate-level documentation for a complete example.
#[derive(Debug, Clone)]
pub struct UniGen {
    /// The sampling set `S`, shared cheaply with every parallel worker clone.
    sampling_set: Arc<[Var]>,
    config: UniGenConfig,
    kappa_pivot: KappaPivot,
    family: XorHashFamily,
    mode: PreparedMode,
    /// The one incremental solver reused for every `BSAT` call this sampler
    /// ever issues: hash layers and blocking clauses are guard-scoped per
    /// cell, while base-formula learned clauses and activities persist.
    solver: Solver,
    /// The installed chaos-testing schedule, if any; doubles as the solver's
    /// fault hook. `None` (the default) costs one pointer test per solve.
    fault_plan: Option<Arc<FaultPlan>>,
    /// A pristine post-preparation snapshot of the solver, kept only while a
    /// fault plan is installed: the last rung of the degradation ladder
    /// rebuilds the working solver from it when retries keep faulting.
    pristine: Option<Box<Solver>>,
    /// Online certification state ([`UniGenConfig::certify`]): the
    /// independent proof checker plus its watermark into the solver's proof
    /// stream. `None` when certify mode is off.
    certifier: Option<Certifier>,
    /// The first certification failure observed while sampling, kept for
    /// diagnosis (the failing cell itself is reported as
    /// [`OutcomeKind::Faulted`]).
    cert_error: Option<unigen_cert::CheckError>,
}

impl UniGen {
    /// Prepares a UniGen sampler for `formula`, using the formula's declared
    /// sampling set (or its full support when none is declared).
    ///
    /// # Errors
    ///
    /// * [`SamplerError::EpsilonTooSmall`] if `config.epsilon ≤ 1.71`,
    /// * [`SamplerError::EmptySamplingSet`] if the formula has no variables,
    /// * [`SamplerError::Unsatisfiable`] if the formula has no witnesses,
    /// * [`SamplerError::Counting`] / [`SamplerError::PreparationBudgetExhausted`]
    ///   if the preparation phase cannot complete.
    pub fn new(formula: &CnfFormula, config: UniGenConfig) -> Result<Self, SamplerError> {
        let sampling_set = formula.sampling_set_or_all();
        Self::with_sampling_set(formula, &sampling_set, config)
    }

    /// Prepares a UniGen sampler with an explicit sampling set `S`.
    ///
    /// The theoretical guarantee requires `S` to be an independent support of
    /// the formula (which can be checked with
    /// [`unigen_satsolver::support::verify_independent_support`]); passing
    /// the full support is always sound but sacrifices the short-xor
    /// advantage.
    ///
    /// # Errors
    ///
    /// See [`UniGen::new`].
    pub fn with_sampling_set(
        formula: &CnfFormula,
        sampling_set: &[Var],
        config: UniGenConfig,
    ) -> Result<Self, SamplerError> {
        if sampling_set.is_empty() {
            return Err(SamplerError::EmptySamplingSet);
        }
        let kappa_pivot = compute_kappa_pivot(config.epsilon)?;
        let hi_count = kappa_pivot.hi_thresh_count();

        // The single solver instance for this sampler's lifetime. Certify
        // mode installs the proof sink before the formula is loaded, so the
        // stream opens with the axioms the checker validates against.
        let mut solver = if config.certify {
            let solver_config = SolverConfig {
                proof: Some(ProofLog::new()),
                ..SolverConfig::default()
            };
            Solver::from_formula_with_config(formula, solver_config)
        } else {
            Solver::from_formula(formula)
        };
        let mut certifier = config.certify.then(|| Certifier::new(formula));

        // Line 4: Y ← BSAT(F, hiThresh). (The bound is hiThresh + 1 so that a
        // result of exactly hiThresh witnesses can be told apart from "more
        // than hiThresh".) Run under a guard so the blocking clauses vanish
        // and the solver enters the sampling phase pristine.
        let outcome = enumerate_cell(
            &mut solver,
            sampling_set,
            &[],
            hi_count + 1,
            &config.bsat_budget,
        );
        // The preparation cell's proof is checked before its outcome is
        // acted on — even an empty cell (unsatisfiable formula) must carry a
        // verified refutation, never an unchecked claim.
        if let Some(certifier) = certifier.as_mut() {
            if let Err(err) = certifier.absorb(&mut solver, None) {
                return Err(SamplerError::CertificationFailed {
                    detail: err.to_string(),
                });
            }
        }
        if outcome.budget_exhausted {
            return Err(SamplerError::PreparationBudgetExhausted);
        }
        if outcome.is_empty() {
            return Err(SamplerError::Unsatisfiable);
        }

        let family = XorHashFamily::new(sampling_set.to_vec());

        let mode = if outcome.len() <= hi_count {
            // Lines 5–7: the easy case. Canonical order makes the uniform
            // pick in `sample` independent of the enumeration order.
            let mut witnesses = outcome.witnesses;
            crate::sampler::sort_witnesses_canonically(&mut witnesses, sampling_set);
            PreparedMode::Enumerated {
                witnesses: witnesses.into(),
            }
        } else {
            // Lines 9–11: approximate count and candidate hash widths.
            let approx = ApproxMc::new(config.approxmc.clone()).count_with_sampling_set(
                formula,
                sampling_set,
                config.seed,
            )?;
            let count = approx.estimate.max(1) as f64;
            let q = (count.log2() + 1.8f64.log2() - (kappa_pivot.pivot as f64).log2()).ceil();
            let q = q.max(1.0) as usize;
            PreparedMode::Hashed {
                approx_count: approx.estimate,
                q,
            }
        };

        Ok(UniGen {
            sampling_set: sampling_set.into(),
            config,
            kappa_pivot,
            family,
            mode,
            solver,
            fault_plan: None,
            pristine: None,
            certifier,
            cert_error: None,
        })
    }

    /// Installs a seeded chaos-testing [`FaultPlan`]: the plan becomes the
    /// persistent solver's fault hook, and a pristine snapshot of the solver
    /// is kept so the degradation ladder can rebuild it from scratch if an
    /// injected fault survives a retry. Installing a plan changes *which*
    /// `BSAT` attempts run, but whenever the ladder's retries succeed the
    /// projected witness sequence is bit-identical to the fault-free run
    /// (the retry reuses the already-drawn hash, consuming no randomness).
    pub fn install_fault_plan(&mut self, plan: Arc<FaultPlan>) {
        self.solver
            .set_fault_hook(Some(plan.clone() as Arc<dyn FaultHook>));
        self.pristine = Some(Box::new(self.solver.clone()));
        self.fault_plan = Some(plan);
    }

    /// Returns the κ/pivot pair computed from the tolerance.
    pub fn kappa_pivot(&self) -> KappaPivot {
        self.kappa_pivot
    }

    /// Returns what the preparation phase concluded.
    pub fn prepared_mode(&self) -> &PreparedMode {
        &self.mode
    }

    /// Returns the sampling set in use.
    pub fn sampling_set(&self) -> &[Var] {
        &self.sampling_set
    }

    /// Returns the configuration.
    pub fn config(&self) -> &UniGenConfig {
        &self.config
    }

    /// Returns the statistics of the persistent incremental solver, including
    /// the guard lifecycle counters (guarded learned clauses retired at the
    /// end of each cell versus base-formula learned clauses retained).
    pub fn solver_stats(&self) -> &SolverStats {
        self.solver.stats()
    }

    /// The raw DRAT-style proof stream the persistent solver has logged so
    /// far, or `None` when certify mode ([`UniGenConfig::certify`]) is off.
    /// Offline tooling (`xtask certify`) re-checks a dumped stream against
    /// [`crate::cert_formula`] of the input formula.
    pub fn proof_bytes(&mut self) -> Option<&[u8]> {
        self.solver.proof_bytes()
    }

    /// The first certification failure observed while sampling, if any (the
    /// cell it occurred in was reported as [`OutcomeKind::Faulted`]).
    pub fn cert_error(&self) -> Option<&unigen_cert::CheckError> {
        self.cert_error.as_ref()
    }

    /// Number of proof steps the online checker has verified, or `None`
    /// when certify mode is off.
    pub fn certified_steps(&self) -> Option<u64> {
        self.certifier.as_ref().map(Certifier::steps)
    }

    /// Feeds every proof byte logged since the last check into the online
    /// checker (a no-op when certify mode is off).
    fn certify_progress(&mut self, stats: &mut SampleStats) -> Result<(), unigen_cert::CheckError> {
        match self.certifier.as_mut() {
            Some(certifier) => {
                let started = Instant::now();
                let result = certifier.absorb(&mut self.solver, Some(stats));
                stats.cert_time += started.elapsed();
                result
            }
            None => Ok(()),
        }
    }

    /// Draws up to `count` witnesses from a **single** accepted cell — the
    /// throughput extension introduced by UniGen's successor (UniGen2),
    /// listed as future work in this paper.
    ///
    /// One hash is drawn and one `BSAT` call enumerates the cell; if the cell
    /// size falls inside `[loThresh, hiThresh]`, up to `count` witnesses are
    /// drawn from it uniformly **without replacement** (at most the whole
    /// cell). Each returned witness individually satisfies the Theorem 1
    /// envelope, but witnesses of the same batch are *not* mutually
    /// independent because they share a cell; callers that need independent
    /// samples must use [`WitnessSampler::sample_batch`] (or
    /// [`crate::ParallelSampler`]) instead — that API draws one fresh cell
    /// per sample. The shared-cell batch amortises the hashing and
    /// enumeration cost over its members, which is what makes high-volume
    /// stimulus generation cheap in practice.
    ///
    /// For formulas small enough to be fully enumerated during preparation,
    /// the batch is simply `count` independent uniform picks.
    pub fn sample_cell_batch(&mut self, count: usize, rng: &mut dyn RngCore) -> Vec<SampleOutcome> {
        if count == 0 {
            return Vec::new();
        }
        match &self.mode {
            PreparedMode::Enumerated { .. } => (0..count).map(|_| self.sample(rng)).collect(),
            PreparedMode::Hashed { q, .. } => {
                let q = *q;
                let (witnesses, stats, failure) = self.collect_cell(q, rng);
                match witnesses {
                    Some(mut cell) if !cell.is_empty() => {
                        // Uniform draw without replacement via a partial
                        // Fisher-Yates shuffle.
                        let take = count.min(cell.len());
                        for i in 0..take {
                            let j = rng.gen_range(i..cell.len());
                            cell.swap(i, j);
                        }
                        cell.into_iter()
                            .take(take)
                            .map(|witness| SampleOutcome::of_witness(witness, stats))
                            .collect()
                    }
                    _ => vec![failed_outcome(failure, stats)],
                }
            }
        }
    }

    /// The per-sample part of Algorithm 1 in the general (hashed) case:
    /// lines 12–22.
    fn sample_hashed(&mut self, q: usize, rng: &mut dyn RngCore) -> SampleOutcome {
        let (witnesses, stats, failure) = self.collect_cell(q, rng);
        match witnesses {
            Some(cell) if !cell.is_empty() => {
                let index = rng.gen_range(0..cell.len());
                SampleOutcome::of_witness(cell[index].clone(), stats)
            }
            _ => failed_outcome(failure, stats),
        }
    }

    /// Issues one `BSAT` call on the persistent solver and folds the solver
    /// work into `stats`.
    fn run_bsat(
        &mut self,
        clauses: &[XorClause],
        bound: usize,
        stats: &mut SampleStats,
    ) -> EnumerationOutcome {
        let before = *self.solver.stats();
        let outcome = enumerate_cell(
            &mut self.solver,
            &self.sampling_set,
            clauses,
            bound,
            &self.config.bsat_budget,
        );
        let after = self.solver.stats();
        stats.solver_propagations += after.propagations - before.propagations;
        stats.solver_conflicts += after.conflicts - before.conflicts;
        stats.bsat_calls += 1;
        outcome
    }

    /// One cell enumeration behind the graceful-degradation ladder.
    ///
    /// A *fresh* cell is announced to the fault plan (so "fail the Nth BSAT
    /// call" counts whole cells, not underlying solves); the ladder's
    /// retries are deliberately not announced and therefore run fault-free.
    /// The rungs, in order:
    ///
    /// 1. `GaussPoisoned` — retry the same cell with Gauss elimination off,
    ///    then restore the mode (`degradations += 1`);
    /// 2. `FaultInjected` — retry the same cell as-is (`retries += 1`);
    /// 3. still faulted — rebuild the solver from the pristine snapshot and
    ///    retry once more (`degradations += 1`).
    ///
    /// Every rung reuses the already-drawn hash, so no randomness is
    /// consumed: when a retry succeeds the enumerated cell — and hence the
    /// projected witness sequence — is bit-identical to the fault-free run.
    fn enumerate_with_ladder(
        &mut self,
        clauses: &[XorClause],
        bound: usize,
        stats: &mut SampleStats,
    ) -> EnumerationOutcome {
        if let Some(plan) = &self.fault_plan {
            plan.begin_bsat();
        }
        let mut outcome = self.run_bsat(clauses, bound, stats);
        if outcome.interrupted == Some(InterruptReason::GaussPoisoned) {
            stats.faults_injected += 1;
            stats.degradations += 1;
            let saved = self.solver.gauss_mode();
            self.solver.set_gauss_mode(GaussMode::Off);
            outcome = self.run_bsat(clauses, bound, stats);
            self.solver.set_gauss_mode(saved);
        }
        if outcome.interrupted == Some(InterruptReason::FaultInjected) {
            stats.faults_injected += 1;
            stats.retries += 1;
            outcome = self.run_bsat(clauses, bound, stats);
        }
        if matches!(outcome.interrupted, Some(reason) if reason.is_fault()) {
            if let Some(pristine) = &self.pristine {
                stats.faults_injected += 1;
                stats.degradations += 1;
                self.solver = (**pristine).clone();
                // The rebuilt solver's proof stream is a fork taken at the
                // snapshot point; the checker has consumed bytes beyond it
                // from the discarded stream, so it restarts from scratch.
                if let Some(certifier) = self.certifier.as_mut() {
                    certifier.reset();
                }
                outcome = self.run_bsat(clauses, bound, stats);
            }
        }
        outcome
    }

    /// Runs lines 12–17 of Algorithm 1: searches the candidate hash widths
    /// for a cell whose size lies in `[loThresh, hiThresh]` and returns its
    /// witnesses (or `None` on failure), together with the work statistics
    /// and — when no cell was accepted — the [`OutcomeKind`] the failure
    /// should be reported as (`Bottom` when every width genuinely missed the
    /// threshold window, `Interrupted`/`Faulted` when the scan gave up on an
    /// interruption the retry bound could not absorb).
    ///
    /// Per lines 12–17, the scan stops at the *first* accepted width: once a
    /// cell lands in `[loThresh, hiThresh]` no further width is tried and no
    /// further `BSAT` call is issued. The returned cell is sorted into the
    /// canonical (projection) order so the caller's uniform pick depends only
    /// on the cell and the RNG, not on solver heuristic state.
    pub(crate) fn collect_cell(
        &mut self,
        q: usize,
        rng: &mut dyn RngCore,
    ) -> (Option<Vec<Model>>, SampleStats, OutcomeKind) {
        let started = Instant::now();
        let mut stats = SampleStats::default();
        let lo = self.kappa_pivot.lo_thresh();
        let hi_count = self.kappa_pivot.hi_thresh_count();
        let max_width = self.sampling_set.len();

        // i ranges over {q−3, …, q}, clamped to the representable widths
        // 1..=|S|. When the whole window lies above |S| (an over-estimated
        // approximate count can produce q > |S| + 3), fall back to the finest
        // representable widths instead of silently running zero iterations.
        let end = q.min(max_width).max(1);
        let mut start = q.saturating_sub(3).max(1);
        if start > end {
            start = end.saturating_sub(3).max(1);
            stats.width_window_clamped += 1;
        }
        let mut chosen: Option<Vec<Model>> = None;
        let mut failure = OutcomeKind::Bottom;
        'widths: for width in start..=end {
            let mut attempts = 0usize;
            loop {
                let hash = self.family.sample(width, rng);
                let clauses = hash.to_xor_clauses();
                stats.xor_clauses_added += clauses.len();
                stats.xor_vars_total += clauses.iter().map(|c| c.len()).sum::<usize>();

                // One guarded cell on the persistent solver: the hash layer
                // and the enumeration's blocking clauses are retired when
                // the call returns, so no fresh solver is ever built here.
                let outcome = self.enumerate_with_ladder(&clauses, hi_count + 1, &mut stats);

                // Certify mode: the cell's proof steps must check before
                // its outcome is trusted. A failed check voids the cell —
                // the sample is reported as faulted, never as a witness or
                // a confident ⊥.
                if let Err(err) = self.certify_progress(&mut stats) {
                    self.cert_error.get_or_insert(err);
                    failure = OutcomeKind::Faulted;
                    break 'widths;
                }

                if let Some(reason) = outcome.interrupted {
                    // A budget fired (or a fault survived the whole ladder):
                    // the call says nothing about the cell. Paper: repeat
                    // lines 14–16 with fresh randomness without advancing i
                    // (bounded here by `bsat_retries`).
                    stats.interrupted_cells += 1;
                    attempts += 1;
                    if attempts > self.config.bsat_retries {
                        failure = if reason.is_fault() {
                            OutcomeKind::Faulted
                        } else {
                            OutcomeKind::Interrupted
                        };
                        break 'widths;
                    }
                    continue;
                }

                let size = outcome.len();
                if size as f64 >= lo && size <= hi_count {
                    // Line 17: the first accepted width ends the scan. (An
                    // earlier version of this loop kept scanning, overwrote
                    // the accepted cell with later widths' cells and paid for
                    // their BSAT calls — a conformance bug against lines
                    // 12–17 that the regression tests below pin down.)
                    chosen = Some(outcome.witnesses);
                    break 'widths;
                }
                continue 'widths;
            }
        }

        if let Some(cell) = chosen.as_mut() {
            crate::sampler::sort_witnesses_canonically(cell, &self.sampling_set);
        }
        stats.wall_time = started.elapsed();
        (chosen, stats, failure)
    }
}

impl WitnessSampler for UniGen {
    fn sample(&mut self, rng: &mut dyn RngCore) -> SampleOutcome {
        match &self.mode {
            PreparedMode::Enumerated { witnesses } => {
                let started = Instant::now();
                let index = rng.gen_range(0..witnesses.len());
                let witness = witnesses[index].clone();
                SampleOutcome::of_witness(
                    witness,
                    SampleStats {
                        wall_time: started.elapsed(),
                        ..SampleStats::default()
                    },
                )
            }
            PreparedMode::Hashed { q, .. } => {
                let q = *q;
                self.sample_hashed(q, rng)
            }
        }
    }

    fn name(&self) -> &'static str {
        "UniGen"
    }
}

/// Builds a deterministic RNG for the unit tests below.
#[cfg(test)]
pub(crate) fn seeded_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use unigen_cnf::{Lit, XorClause};

    /// A formula with `2^bits` witnesses over a `bits`-variable sampling set
    /// plus `extra` Tseitin-style dependent variables.
    fn formula_with_count(bits: usize, extra: usize) -> CnfFormula {
        let mut f = CnfFormula::new(bits + extra);
        for i in 0..extra {
            let free = Var::new(i % bits);
            let dependent = Var::new(bits + i);
            f.add_xor_clause(XorClause::new([free, dependent], false))
                .unwrap();
        }
        f.set_sampling_set((0..bits).map(Var::new)).unwrap();
        f
    }

    #[test]
    fn small_formula_uses_enumerated_mode() {
        // 8 witnesses < hiThresh (62 for ε = 6).
        let f = formula_with_count(3, 2);
        let sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        match sampler.prepared_mode() {
            PreparedMode::Enumerated { witnesses } => assert_eq!(witnesses.len(), 8),
            other => panic!("expected Enumerated, got {other:?}"),
        }
    }

    #[test]
    fn large_formula_uses_hashed_mode() {
        // 2^12 witnesses > hiThresh.
        let f = formula_with_count(12, 4);
        let sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        match sampler.prepared_mode() {
            PreparedMode::Hashed { approx_count, q } => {
                assert!(*approx_count >= 1024, "count {approx_count} far too small");
                assert!(*q >= 3, "q = {q}");
            }
            other => panic!("expected Hashed, got {other:?}"),
        }
    }

    #[test]
    fn unsatisfiable_formula_is_rejected() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::from_dimacs(1)]).unwrap();
        f.add_clause([Lit::from_dimacs(-1)]).unwrap();
        assert!(matches!(
            UniGen::new(&f, UniGenConfig::default()),
            Err(SamplerError::Unsatisfiable)
        ));
    }

    #[test]
    fn too_small_epsilon_is_rejected() {
        let f = formula_with_count(3, 0);
        let config = UniGenConfig::default().with_epsilon(1.5);
        assert!(matches!(
            UniGen::new(&f, config),
            Err(SamplerError::EpsilonTooSmall { .. })
        ));
    }

    #[test]
    fn samples_are_valid_witnesses() {
        let f = formula_with_count(10, 5);
        let mut sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let mut rng = seeded_rng(7);
        let mut successes = 0;
        for _ in 0..20 {
            let outcome = sampler.sample(&mut rng);
            if let Some(witness) = &outcome.witness {
                assert!(f.evaluate(witness), "returned non-witness");
                successes += 1;
            }
        }
        // Theorem 1 guarantees ≥ 0.62 success probability; empirically it is
        // close to 1, so requiring at least half of 20 attempts is safe.
        assert!(successes >= 10, "only {successes}/20 samples succeeded");
    }

    #[test]
    fn xor_length_tracks_the_sampling_set() {
        let f = formula_with_count(12, 30);
        let mut sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let mut rng = seeded_rng(11);
        let mut stats = SampleStats::default();
        for _ in 0..5 {
            stats.accumulate(&sampler.sample(&mut rng).stats);
        }
        let avg = stats.average_xor_length();
        // Hashing over S (12 variables) gives xors of expected length 6, far
        // below the 21 expected when hashing over the full 42-variable
        // support.
        assert!(avg > 2.0 && avg < 12.0, "average xor length {avg}");
    }

    #[test]
    fn enumerated_mode_is_exactly_uniform_empirically() {
        let f = formula_with_count(3, 1);
        let mut sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let mut rng = seeded_rng(3);
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let sampling = f.sampling_set().unwrap().to_vec();
        let draws = 4000;
        for _ in 0..draws {
            let witness = sampler.sample(&mut rng).witness.unwrap();
            *counts
                .entry(witness.project(&sampling).as_index())
                .or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 8);
        for (&key, &count) in &counts {
            let expected = draws as f64 / 8.0;
            assert!(
                (count as f64 - expected).abs() < expected * 0.3,
                "witness {key} sampled {count} times, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn batch_sampling_returns_distinct_valid_witnesses() {
        // Hashed mode: 2^10 witnesses.
        let f = formula_with_count(10, 4);
        let mut sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        assert!(matches!(
            sampler.prepared_mode(),
            PreparedMode::Hashed { .. }
        ));
        let mut rng = seeded_rng(21);
        let batch = sampler.sample_cell_batch(8, &mut rng);
        let successes: Vec<_> = batch.iter().filter_map(|o| o.witness.clone()).collect();
        assert!(!successes.is_empty(), "batch produced no witnesses");
        let sampling = f.sampling_set().unwrap().to_vec();
        let mut projections: Vec<u64> = successes
            .iter()
            .map(|w| {
                assert!(f.evaluate(w));
                w.project(&sampling).as_index()
            })
            .collect();
        projections.sort_unstable();
        projections.dedup();
        // Drawing without replacement from one cell: all distinct.
        assert_eq!(projections.len(), successes.len());
        // The whole batch shares one cell enumeration: identical stats.
        let calls: Vec<usize> = batch.iter().map(|o| o.stats.bsat_calls).collect();
        assert!(calls.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn batch_sampling_handles_edge_cases() {
        let f = formula_with_count(3, 1);
        let mut sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let mut rng = seeded_rng(22);
        assert!(sampler.sample_cell_batch(0, &mut rng).is_empty());
        // Enumerated mode: batch reduces to independent uniform picks.
        let batch = sampler.sample_cell_batch(20, &mut rng);
        assert_eq!(batch.len(), 20);
        assert!(batch.iter().all(|o| o.is_success()));
    }

    #[test]
    fn sampling_constructs_no_additional_solvers() {
        let f = formula_with_count(12, 4);
        let before = Solver::constructions_on_thread();
        let mut sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let during_prep = Solver::constructions_on_thread() - before;
        // One persistent solver for UniGen itself plus one inside the single
        // ApproxMC preparation call.
        assert!(
            during_prep <= 2,
            "preparation built {during_prep} solvers, expected at most 2"
        );
        assert!(matches!(
            sampler.prepared_mode(),
            PreparedMode::Hashed { .. }
        ));
        let mut rng = seeded_rng(13);
        for _ in 0..5 {
            let _ = sampler.sample(&mut rng);
        }
        assert_eq!(
            Solver::constructions_on_thread() - before,
            during_prep,
            "the per-cell loop must reuse the persistent solver"
        );
        // The guard lifecycle ran: one guard per attempted cell, all retired.
        let stats = sampler.solver_stats();
        assert!(stats.guards_created >= 5);
        assert_eq!(stats.guards_created, stats.guards_retired);
    }

    #[test]
    fn width_scan_stops_at_first_accepted_width() {
        // 2^6 = 64 witnesses over a 6-variable sampling set. Any width-1
        // hash whose row is non-degenerate splits the space into two cells
        // of exactly 32 witnesses — inside [loThresh ≈ 25.9, hiThresh = 62]
        // for ε = 6 — so the scan must accept at the *first* width and issue
        // exactly one BSAT call. The pre-fix loop kept scanning: it issued
        // one call per remaining width and overwrote the accepted cell.
        let f = formula_with_count(6, 0);
        let mut sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let mut rng = seeded_rng(17);
        let mut first_width_accepts = 0;
        for _ in 0..10 {
            let (cell, stats, _) = sampler.collect_cell(2, &mut rng);
            if let Some(cell) = cell {
                if cell.len() == 32 {
                    first_width_accepts += 1;
                    assert_eq!(
                        stats.bsat_calls, 1,
                        "the scan issued BSAT calls after the first accepted width"
                    );
                }
            }
        }
        // Degenerate (all-zero) hash rows are a 1-in-64 event per draw; with
        // this seed the common case must dominate.
        assert!(
            first_width_accepts >= 8,
            "only {first_width_accepts}/10 scans accepted at the first width"
        );
    }

    #[test]
    fn accepted_cell_is_in_canonical_order() {
        let f = formula_with_count(6, 0);
        let mut sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let sampling = sampler.sampling_set().to_vec();
        let mut rng = seeded_rng(19);
        let mut checked = 0;
        for _ in 0..5 {
            if let (Some(cell), _, _) = sampler.collect_cell(2, &mut rng) {
                let indices: Vec<u64> = cell
                    .iter()
                    .map(|w| w.project(&sampling).as_index())
                    .collect();
                assert!(indices.windows(2).all(|w| w[0] < w[1]), "{indices:?}");
                checked += 1;
            }
        }
        assert!(checked > 0, "no cell was ever accepted");
    }

    #[test]
    fn oversized_q_clamps_the_width_window() {
        let f = formula_with_count(6, 0);
        let mut sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let mut rng = seeded_rng(5);
        // q far beyond |S| + 3: the window {q−3, …, q} contains no
        // representable width, so before the clamp the loop body never ran
        // and the scan reported ⊥ with zero solver work.
        let (_, stats, _) = sampler.collect_cell(64, &mut rng);
        assert_eq!(stats.width_window_clamped, 1);
        assert!(
            stats.bsat_calls >= 1,
            "a clamped window must still issue solver work"
        );
        // The ordinary window is untouched by the clamp accounting.
        let (_, stats, _) = sampler.collect_cell(2, &mut rng);
        assert_eq!(stats.width_window_clamped, 0);
    }

    #[test]
    fn enumerated_witnesses_are_in_canonical_order() {
        let f = formula_with_count(3, 2);
        let sampler = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let sampling = sampler.sampling_set().to_vec();
        match sampler.prepared_mode() {
            PreparedMode::Enumerated { witnesses } => {
                let indices: Vec<u64> = witnesses
                    .iter()
                    .map(|w| w.project(&sampling).as_index())
                    .collect();
                assert!(indices.windows(2).all(|w| w[0] < w[1]), "{indices:?}");
            }
            other => panic!("expected Enumerated, got {other:?}"),
        }
    }

    #[test]
    fn explicit_sampling_set_overrides_formula_metadata() {
        let mut f = formula_with_count(4, 2);
        f.set_sampling_set(Vec::<Var>::new()).unwrap(); // clear
        let sampling: Vec<Var> = (0..4).map(Var::new).collect();
        let sampler = UniGen::with_sampling_set(&f, &sampling, UniGenConfig::default()).unwrap();
        assert_eq!(sampler.sampling_set(), sampling.as_slice());
    }

    /// Folds a batch's stats into one accumulator.
    fn total_stats(outcomes: &[SampleOutcome]) -> SampleStats {
        let mut acc = SampleStats::default();
        for outcome in outcomes {
            acc.accumulate(&outcome.stats);
        }
        acc
    }

    #[test]
    fn injected_bsat_fault_is_retried_to_a_bit_identical_batch() {
        let f = formula_with_count(10, 4);
        let mut clean = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let mut chaotic = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let plan = Arc::new(FaultPlan::seeded(9).fail_nth_bsat(1));
        chaotic.install_fault_plan(plan.clone());

        let reference = clean.sample_batch(4, 0xabc);
        let faulted = chaotic.sample_batch(4, 0xabc);
        let witnesses =
            |outs: &[SampleOutcome]| outs.iter().map(|o| o.witness.clone()).collect::<Vec<_>>();
        assert_eq!(
            witnesses(&reference),
            witnesses(&faulted),
            "a retried fault must reproduce the fault-free witness sequence"
        );
        assert_eq!(plan.faults_injected(), 1);

        let total = total_stats(&faulted);
        assert_eq!(total.retries, 1);
        assert_eq!(total.faults_injected, 1);
        let clean_total = total_stats(&reference);
        assert_eq!(clean_total.faults_injected, 0);
        assert_eq!(clean_total.retries, 0);
        // The faulted attempt itself costs exactly one extra BSAT call.
        assert_eq!(total.bsat_calls, clean_total.bsat_calls + 1);
        // Guard accounting stays balanced across the injected fault.
        let stats = chaotic.solver_stats();
        assert_eq!(stats.guards_created, stats.guards_retired);
    }

    #[test]
    fn poisoned_gauss_seal_degrades_to_gauss_off_and_recovers() {
        let f = formula_with_count(10, 4);
        let mut clean = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let mut chaotic = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let plan = Arc::new(FaultPlan::seeded(4).poison_nth_gauss_seal(1));
        chaotic.install_fault_plan(plan.clone());

        let reference = clean.sample_batch(3, 77);
        let degraded = chaotic.sample_batch(3, 77);
        let witnesses =
            |outs: &[SampleOutcome]| outs.iter().map(|o| o.witness.clone()).collect::<Vec<_>>();
        assert_eq!(
            witnesses(&reference),
            witnesses(&degraded),
            "the Gauss-off retry must enumerate the same cell"
        );
        assert_eq!(plan.faults_injected(), 1);

        let total = total_stats(&degraded);
        assert_eq!(total.degradations, 1);
        assert_eq!(total.faults_injected, 1);
        assert_eq!(total_stats(&reference).degradations, 0);
        let stats = chaotic.solver_stats();
        assert_eq!(stats.guards_created, stats.guards_retired);
    }

    #[test]
    fn certified_sampling_checks_every_cell_and_matches_uncertified_output() {
        let f = formula_with_count(10, 4);
        let mut plain = UniGen::new(&f, UniGenConfig::default()).unwrap();
        let mut certified = UniGen::new(&f, UniGenConfig::default().with_certify(true)).unwrap();
        assert!(certified.certified_steps().unwrap_or(0) > 0);

        let reference = plain.sample_batch(6, 0x5eed);
        let checked = certified.sample_batch(6, 0x5eed);
        let witnesses =
            |outs: &[SampleOutcome]| outs.iter().map(|o| o.witness.clone()).collect::<Vec<_>>();
        // Certification observes the run; it must not perturb the witnesses.
        assert_eq!(witnesses(&reference), witnesses(&checked));
        assert!(certified.cert_error().is_none());

        let total = {
            let mut acc = SampleStats::default();
            for o in &checked {
                acc.accumulate(&o.stats);
            }
            acc
        };
        assert!(total.cert_checks >= total.bsat_calls.min(1));
        assert!(total.proof_bytes > 0);
        // The stream the checker consumed is exactly the solver's log.
        assert!(certified.proof_bytes().is_some_and(|b| !b.is_empty()));
        assert!(plain.proof_bytes().is_none());
    }

    #[test]
    fn certified_enumerated_mode_verifies_the_preparation_cell() {
        let f = formula_with_count(3, 2);
        let mut sampler = UniGen::new(&f, UniGenConfig::default().with_certify(true)).unwrap();
        match sampler.prepared_mode() {
            PreparedMode::Enumerated { witnesses } => assert_eq!(witnesses.len(), 8),
            other => panic!("expected Enumerated, got {other:?}"),
        }
        // The whole preparation enumeration was proof-checked.
        assert!(sampler.certified_steps().unwrap() > 0);
        assert!(sampler.cert_error().is_none());
        // The independent offline checker accepts the same stream end to end.
        let formula = crate::certify::cert_formula(&f);
        let bytes = sampler.proof_bytes().unwrap().to_vec();
        let report = unigen_cert::Checker::check(&formula, &bytes).unwrap();
        report.require_complete().unwrap();
        assert_eq!(report.cells.len(), 1);
        assert!(report.cells[0].exhaustive());
        assert_eq!(report.cells[0].witnesses.len(), 8);
    }

    #[test]
    fn certified_unsat_formula_still_carries_a_checked_refutation() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::from_dimacs(1)]).unwrap();
        f.add_clause([Lit::from_dimacs(-1)]).unwrap();
        assert!(matches!(
            UniGen::new(&f, UniGenConfig::default().with_certify(true)),
            Err(SamplerError::Unsatisfiable)
        ));
    }

    #[test]
    fn certified_fault_recovery_resets_the_checker_with_the_solver() {
        let f = formula_with_count(10, 4);
        let config = UniGenConfig::default().with_certify(true);
        let mut clean = UniGen::new(&f, config.clone()).unwrap();
        let mut chaotic = UniGen::new(&f, config).unwrap();
        let plan = Arc::new(FaultPlan::seeded(9).fail_nth_bsat(1));
        chaotic.install_fault_plan(plan.clone());

        let reference = clean.sample_batch(4, 0xabc);
        let faulted = chaotic.sample_batch(4, 0xabc);
        let witnesses =
            |outs: &[SampleOutcome]| outs.iter().map(|o| o.witness.clone()).collect::<Vec<_>>();
        assert_eq!(witnesses(&reference), witnesses(&faulted));
        assert_eq!(plan.faults_injected(), 1);
        assert!(chaotic.cert_error().is_none(), "{:?}", chaotic.cert_error());
    }

    #[test]
    fn empty_sampling_set_is_rejected() {
        let f = formula_with_count(3, 0);
        assert!(matches!(
            UniGen::with_sampling_set(&f, &[], UniGenConfig::default()),
            Err(SamplerError::EmptySamplingSet)
        ));
    }
}
