//! The common sampler interface and per-sample bookkeeping.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use unigen_cnf::{Model, Var};

/// Statistics describing the work a single sample cost.
///
/// These are the quantities the paper's tables report per benchmark: the
/// average generation time, the average xor-clause length, and (implicitly,
/// through the success probability) how often the generator returns `⊥`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleStats {
    /// Number of bounded-enumeration (`BSAT`) calls issued.
    pub bsat_calls: usize,
    /// Number of xor clauses added across all hash draws of this sample.
    pub xor_clauses_added: usize,
    /// Total number of variables across those xor clauses (so the average
    /// xor length is `xor_vars_total / xor_clauses_added`).
    pub xor_vars_total: usize,
    /// Wall-clock time spent producing this sample.
    pub wall_time: Duration,
    /// Unit propagations the solver performed for this sample (CNF + xor).
    pub solver_propagations: u64,
    /// Conflicts the solver hit for this sample.
    pub solver_conflicts: u64,
    /// Number of times the candidate hash-width window `{q−3, …, q}` had to
    /// be clamped because it fell entirely outside the representable widths
    /// `1..=|S|` (an over-estimated approximate count can push `q` past
    /// `|S| + 3`). Without the clamp the width loop would silently run zero
    /// iterations and report `⊥` with no solver work at all.
    pub width_window_clamped: usize,
    /// Number of times this sample's work item was *stolen* by an idle worker
    /// from another worker's deque (0 or 1 per sample; summing over a batch
    /// via [`SampleStats::accumulate`] counts the batch's total steals). Only
    /// the [`crate::SamplerService`] scheduler sets this; serial sampling
    /// leaves it 0.
    pub steals: usize,
    /// Time this sample's work item spent queued in the service scheduler
    /// between request submission and execution start. Only the
    /// [`crate::SamplerService`] scheduler sets this; serial sampling leaves
    /// it zero.
    pub queue_wait: Duration,
    /// Number of cell enumerations that were *interrupted* (budget fired or
    /// fault injected) while producing this sample. Distinct from a genuine
    /// `⊥`: an interrupted cell says nothing about the cell's content,
    /// which is why the samplers no longer conflate the two.
    pub interrupted_cells: usize,
    /// Number of times an interrupted or faulted call was retried while
    /// producing this sample (cell-level retries in the samplers plus
    /// item-level retries in the service).
    pub retries: usize,
    /// Number of times the degradation ladder stepped down while producing
    /// this sample (Gauss-poisoned cell retried Gauss-off, or the
    /// incremental solver rebuilt from its pristine snapshot).
    pub degradations: usize,
    /// Number of injected faults observed while producing this sample.
    /// Zero unless a [`crate::FaultPlan`] (or custom hook) is installed.
    pub faults_injected: usize,
    /// Proof-stream bytes logged by the solver and fed to the independent
    /// checker while producing this sample. Zero unless certified
    /// enumeration ([`crate::UniGenConfig::certify`]) is on.
    pub proof_bytes: usize,
    /// Number of incremental certification checks run while producing this
    /// sample (one per cell enumeration when certify mode is on).
    pub cert_checks: usize,
    /// Wall-clock time spent verifying proof steps for this sample.
    pub cert_time: Duration,
}

impl SampleStats {
    /// Average xor-clause length used while producing this sample (the
    /// "Avg XOR len" column), or 0 if no xor clause was added.
    pub fn average_xor_length(&self) -> f64 {
        if self.xor_clauses_added == 0 {
            0.0
        } else {
            self.xor_vars_total as f64 / self.xor_clauses_added as f64
        }
    }

    /// Accumulates another sample's statistics into this one (used by the
    /// harness when averaging over many samples).
    pub fn accumulate(&mut self, other: &SampleStats) {
        self.bsat_calls += other.bsat_calls;
        self.xor_clauses_added += other.xor_clauses_added;
        self.xor_vars_total += other.xor_vars_total;
        self.wall_time += other.wall_time;
        self.solver_propagations += other.solver_propagations;
        self.solver_conflicts += other.solver_conflicts;
        self.width_window_clamped += other.width_window_clamped;
        self.steals += other.steals;
        self.queue_wait += other.queue_wait;
        self.interrupted_cells += other.interrupted_cells;
        self.retries += other.retries;
        self.degradations += other.degradations;
        self.faults_injected += other.faults_injected;
        self.proof_bytes += other.proof_bytes;
        self.cert_checks += other.cert_checks;
        self.cert_time += other.cert_time;
    }
}

/// Returns the dedicated RNG stream for sample `index` of a batch seeded
/// with `master_seed` — the stream-derivation rule shared by the serial
/// [`WitnessSampler::sample_batch`] reference and [`crate::ParallelSampler`].
///
/// The pair is mixed through a SplitMix64 finalizer rather than a plain
/// `master_seed ^ index`: XOR alone maps batches with nearby master seeds to
/// the *same set* of streams in permuted order (e.g. seeds 0 and 1 over
/// indices `0..16` both yield streams seeded `{0, …, 15}`), silently
/// correlating supposedly independent batches. The determinism contract only
/// needs this to be a pure function of `(master_seed, index)`, which the mix
/// preserves.
pub(crate) fn stream_for_index(master_seed: u64, index: usize) -> StdRng {
    let mut z = master_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Sorts a cell's witnesses into the canonical order: ascending by their
/// projection onto the sampling set.
///
/// An exhaustively enumerated cell is a *set* determined entirely by the
/// formula and the hash, but the order in which the solver discovers its
/// members depends on heuristic state (activities, saved phases) accumulated
/// over earlier calls. Every sampler in this crate picks a uniform witness by
/// index, so sorting first makes the picked witness a function of the cell
/// and the RNG alone — the property the deterministic parallel batch engine
/// ([`crate::ParallelSampler`]) relies on to produce bit-identical output
/// regardless of how samples are scheduled across worker solvers.
pub(crate) fn sort_witnesses_canonically(witnesses: &mut [Model], sampling_set: &[Var]) {
    // Comparing from the *last* sampling-set variable down makes the
    // lexicographic order coincide with ascending numeric order of
    // `Projection::as_index` (which treats the first variable as the
    // least-significant bit), for sampling sets of any width.
    witnesses.sort_by_cached_key(|w| {
        sampling_set
            .iter()
            .rev()
            .map(|&v| w.value(v))
            .collect::<Vec<bool>>()
    });
}

/// What kind of result one sampling attempt produced.
///
/// Before this type existed a budget-interrupted cell and a genuine `⊥`
/// were both reported as "no witness"; the paper's `⊥` is a *definite*
/// answer (the pivot/threshold test failed), while an interruption says
/// nothing about the cell at all. Keeping the two (plus outright faults)
/// apart is what lets the service retry the right outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OutcomeKind {
    /// A witness was produced.
    Witness,
    /// The paper's `⊥`: the attempt completed and definitively failed
    /// (empty cell, pivot exceeded, threshold missed).
    #[default]
    Bottom,
    /// The attempt was interrupted by a fired budget before completing;
    /// retrying with a larger budget may succeed.
    Interrupted,
    /// The attempt was lost to a fault (injected or a worker panic) that
    /// the recovery ladder could not absorb.
    Faulted,
}

impl std::fmt::Display for OutcomeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OutcomeKind::Witness => "witness",
            OutcomeKind::Bottom => "bottom",
            OutcomeKind::Interrupted => "interrupted",
            OutcomeKind::Faulted => "faulted",
        })
    }
}

/// The result of one sampling attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleOutcome {
    /// The generated witness, or `None` for every non-witness kind.
    pub witness: Option<Model>,
    /// What the attempt cost.
    pub stats: SampleStats,
    /// What kind of result this is; `Witness` if and only if `witness` is
    /// `Some` (use the constructors to keep the invariant).
    pub kind: OutcomeKind,
}

impl SampleOutcome {
    /// A successful outcome carrying `model`.
    pub fn of_witness(model: Model, stats: SampleStats) -> Self {
        SampleOutcome {
            witness: Some(model),
            stats,
            kind: OutcomeKind::Witness,
        }
    }

    /// The paper's `⊥`: a definite failure.
    pub fn bottom(stats: SampleStats) -> Self {
        SampleOutcome {
            witness: None,
            stats,
            kind: OutcomeKind::Bottom,
        }
    }

    /// A budget-interrupted attempt (retryable).
    pub fn interrupted(stats: SampleStats) -> Self {
        SampleOutcome {
            witness: None,
            stats,
            kind: OutcomeKind::Interrupted,
        }
    }

    /// An attempt lost to an unabsorbed fault.
    pub fn faulted(stats: SampleStats) -> Self {
        SampleOutcome {
            witness: None,
            stats,
            kind: OutcomeKind::Faulted,
        }
    }

    /// Returns `true` if a witness was produced.
    pub fn is_success(&self) -> bool {
        self.witness.is_some()
    }
}

/// Builds the witness-less outcome matching a failure `kind` (anything
/// other than `Interrupted`/`Faulted` is reported as the paper's `⊥`).
pub(crate) fn failed_outcome(kind: OutcomeKind, stats: SampleStats) -> SampleOutcome {
    match kind {
        OutcomeKind::Interrupted => SampleOutcome::interrupted(stats),
        OutcomeKind::Faulted => SampleOutcome::faulted(stats),
        _ => SampleOutcome::bottom(stats),
    }
}

/// Common interface implemented by every witness generator in this crate
/// (UniGen, UniWit, XORSample′ and the ideal sampler US).
///
/// A sampler is created per formula, may perform arbitrary preparation work
/// in its constructor, and is then asked for witnesses one at a time. All
/// per-sample randomness comes from the `rng` argument so experiments can be
/// made reproducible and so UniGen and US can share one random source in the
/// uniformity study, as the paper does.
pub trait WitnessSampler {
    /// Produces one witness (or reports failure).
    fn sample(&mut self, rng: &mut dyn RngCore) -> SampleOutcome;

    /// Produces `count` witnesses, collecting the outcomes.
    fn sample_many(&mut self, count: usize, rng: &mut dyn RngCore) -> Vec<SampleOutcome> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// Produces `count` witnesses, sample `i` drawing all of its randomness
    /// from a dedicated stream derived (via a SplitMix64 mix) from
    /// `(master_seed, i)`.
    ///
    /// This is the serial reference implementation of the batch API: because
    /// each sample owns an RNG stream derived from its *index* (not from
    /// however many draws earlier samples consumed), the witness at position
    /// `i` is a function of the sampler's prepared state, `master_seed` and
    /// `i` alone. [`crate::ParallelSampler`] exploits exactly this to fan the
    /// index range out over a pool of worker solvers while reproducing this
    /// method's output bit for bit, at any thread count.
    ///
    /// The determinism contract requires per-`BSAT` budgets that never
    /// trigger (the default unlimited [`unigen_satsolver::Budget`]): a
    /// wall-clock or conflict cutoff fires depending on accumulated solver
    /// state, which is the one thing workers do not share.
    fn sample_batch(&mut self, count: usize, master_seed: u64) -> Vec<SampleOutcome> {
        (0..count)
            .map(|index| {
                let mut rng = stream_for_index(master_seed, index);
                self.sample(&mut rng)
            })
            .collect()
    }

    /// A short human-readable name used by the benchmark harness ("UniGen",
    /// "UniWit", …).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_xor_length_handles_zero_division() {
        let stats = SampleStats::default();
        assert_eq!(stats.average_xor_length(), 0.0);
        let stats = SampleStats {
            xor_clauses_added: 4,
            xor_vars_total: 36,
            ..SampleStats::default()
        };
        assert_eq!(stats.average_xor_length(), 9.0);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = SampleStats {
            bsat_calls: 1,
            xor_clauses_added: 2,
            xor_vars_total: 10,
            wall_time: Duration::from_millis(5),
            solver_propagations: 100,
            solver_conflicts: 1,
            width_window_clamped: 1,
            steals: 1,
            queue_wait: Duration::from_millis(2),
            interrupted_cells: 1,
            retries: 2,
            degradations: 0,
            faults_injected: 1,
            proof_bytes: 100,
            cert_checks: 1,
            cert_time: Duration::from_millis(1),
        };
        let b = SampleStats {
            bsat_calls: 3,
            xor_clauses_added: 4,
            xor_vars_total: 6,
            wall_time: Duration::from_millis(7),
            solver_propagations: 11,
            solver_conflicts: 2,
            width_window_clamped: 0,
            steals: 1,
            queue_wait: Duration::from_millis(3),
            interrupted_cells: 2,
            retries: 1,
            degradations: 1,
            faults_injected: 2,
            proof_bytes: 11,
            cert_checks: 2,
            cert_time: Duration::from_millis(4),
        };
        a.accumulate(&b);
        assert_eq!(a.bsat_calls, 4);
        assert_eq!(a.xor_clauses_added, 6);
        assert_eq!(a.xor_vars_total, 16);
        assert_eq!(a.wall_time, Duration::from_millis(12));
        assert_eq!(a.solver_propagations, 111);
        assert_eq!(a.solver_conflicts, 3);
        assert_eq!(a.width_window_clamped, 1);
        assert_eq!(a.steals, 2);
        assert_eq!(a.queue_wait, Duration::from_millis(5));
        assert_eq!(a.interrupted_cells, 3);
        assert_eq!(a.retries, 3);
        assert_eq!(a.degradations, 1);
        assert_eq!(a.faults_injected, 3);
        assert_eq!(a.proof_bytes, 111);
        assert_eq!(a.cert_checks, 3);
        assert_eq!(a.cert_time, Duration::from_millis(5));
    }

    #[test]
    fn canonical_sort_orders_by_sampling_set_projection() {
        let sampling = [Var::new(0), Var::new(2)];
        let mut witnesses = vec![
            Model::new(vec![true, false, true]),   // projection (T, T)
            Model::new(vec![false, true, true]),   // projection (F, T)
            Model::new(vec![true, true, false]),   // projection (T, F)
            Model::new(vec![false, false, false]), // projection (F, F)
        ];
        sort_witnesses_canonically(&mut witnesses, &sampling);
        // Ascending numeric order of the projection index: Var(0) is the
        // least-significant bit, Var(2) the most-significant one.
        let indices: Vec<u64> = witnesses
            .iter()
            .map(|w| w.project(&sampling).as_index())
            .collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn default_sample_batch_derives_one_stream_per_index() {
        /// A fake sampler that records the first `u32` drawn from each
        /// per-sample RNG stream, so the test can pin the stream-derivation
        /// rule the parallel engine depends on.
        struct StreamRecorder {
            first_draws: Vec<u32>,
        }
        impl WitnessSampler for StreamRecorder {
            fn sample(&mut self, rng: &mut dyn RngCore) -> SampleOutcome {
                self.first_draws.push(rng.next_u32());
                SampleOutcome::bottom(SampleStats::default())
            }
            fn name(&self) -> &'static str {
                "StreamRecorder"
            }
        }

        let master = 0xfeed_beef;
        let mut sampler = StreamRecorder {
            first_draws: Vec::new(),
        };
        let outcomes = sampler.sample_batch(4, master);
        assert_eq!(outcomes.len(), 4);
        let expected: Vec<u32> = (0..4usize)
            .map(|i| stream_for_index(master, i).next_u32())
            .collect();
        assert_eq!(sampler.first_draws, expected);
    }

    #[test]
    fn nearby_master_seeds_use_disjoint_stream_sets() {
        // A plain `master_seed ^ index` derivation would make seeds 0 and 1
        // draw the same 16 streams in permuted order, correlating the two
        // batches completely; the SplitMix64 mix must keep them apart.
        let draws = |seed: u64| -> std::collections::HashSet<u64> {
            (0..16usize)
                .map(|i| stream_for_index(seed, i).next_u64())
                .collect()
        };
        let a = draws(0);
        let b = draws(1);
        assert!(a.is_disjoint(&b), "seeds 0 and 1 share RNG streams");
    }

    #[test]
    fn outcome_success_reflects_witness_presence() {
        let success = SampleOutcome::of_witness(Model::new(vec![true]), SampleStats::default());
        let failure = SampleOutcome::bottom(SampleStats::default());
        assert!(success.is_success());
        assert_eq!(success.kind, OutcomeKind::Witness);
        assert!(!failure.is_success());
        assert_eq!(failure.kind, OutcomeKind::Bottom);
        assert_eq!(
            SampleOutcome::interrupted(SampleStats::default()).kind,
            OutcomeKind::Interrupted
        );
        assert_eq!(
            SampleOutcome::faulted(SampleStats::default()).kind,
            OutcomeKind::Faulted
        );
    }
}
