//! The common sampler interface and per-sample bookkeeping.

use std::time::Duration;

use rand::RngCore;
use unigen_cnf::Model;

/// Statistics describing the work a single sample cost.
///
/// These are the quantities the paper's tables report per benchmark: the
/// average generation time, the average xor-clause length, and (implicitly,
/// through the success probability) how often the generator returns `⊥`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleStats {
    /// Number of bounded-enumeration (`BSAT`) calls issued.
    pub bsat_calls: usize,
    /// Number of xor clauses added across all hash draws of this sample.
    pub xor_clauses_added: usize,
    /// Total number of variables across those xor clauses (so the average
    /// xor length is `xor_vars_total / xor_clauses_added`).
    pub xor_vars_total: usize,
    /// Wall-clock time spent producing this sample.
    pub wall_time: Duration,
    /// Unit propagations the solver performed for this sample (CNF + xor).
    pub solver_propagations: u64,
    /// Conflicts the solver hit for this sample.
    pub solver_conflicts: u64,
}

impl SampleStats {
    /// Average xor-clause length used while producing this sample (the
    /// "Avg XOR len" column), or 0 if no xor clause was added.
    pub fn average_xor_length(&self) -> f64 {
        if self.xor_clauses_added == 0 {
            0.0
        } else {
            self.xor_vars_total as f64 / self.xor_clauses_added as f64
        }
    }

    /// Accumulates another sample's statistics into this one (used by the
    /// harness when averaging over many samples).
    pub fn accumulate(&mut self, other: &SampleStats) {
        self.bsat_calls += other.bsat_calls;
        self.xor_clauses_added += other.xor_clauses_added;
        self.xor_vars_total += other.xor_vars_total;
        self.wall_time += other.wall_time;
        self.solver_propagations += other.solver_propagations;
        self.solver_conflicts += other.solver_conflicts;
    }
}

/// The result of one sampling attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleOutcome {
    /// The generated witness, or `None` for the paper's `⊥` outcome.
    pub witness: Option<Model>,
    /// What the attempt cost.
    pub stats: SampleStats,
}

impl SampleOutcome {
    /// Returns `true` if a witness was produced.
    pub fn is_success(&self) -> bool {
        self.witness.is_some()
    }
}

/// Common interface implemented by every witness generator in this crate
/// (UniGen, UniWit, XORSample′ and the ideal sampler US).
///
/// A sampler is created per formula, may perform arbitrary preparation work
/// in its constructor, and is then asked for witnesses one at a time. All
/// per-sample randomness comes from the `rng` argument so experiments can be
/// made reproducible and so UniGen and US can share one random source in the
/// uniformity study, as the paper does.
pub trait WitnessSampler {
    /// Produces one witness (or reports failure).
    fn sample(&mut self, rng: &mut dyn RngCore) -> SampleOutcome;

    /// Produces `count` witnesses, collecting the outcomes.
    fn sample_many(&mut self, count: usize, rng: &mut dyn RngCore) -> Vec<SampleOutcome> {
        (0..count).map(|_| self.sample(rng)).collect()
    }

    /// A short human-readable name used by the benchmark harness ("UniGen",
    /// "UniWit", …).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_xor_length_handles_zero_division() {
        let stats = SampleStats::default();
        assert_eq!(stats.average_xor_length(), 0.0);
        let stats = SampleStats {
            xor_clauses_added: 4,
            xor_vars_total: 36,
            ..SampleStats::default()
        };
        assert_eq!(stats.average_xor_length(), 9.0);
    }

    #[test]
    fn accumulate_sums_fields() {
        let mut a = SampleStats {
            bsat_calls: 1,
            xor_clauses_added: 2,
            xor_vars_total: 10,
            wall_time: Duration::from_millis(5),
            solver_propagations: 100,
            solver_conflicts: 1,
        };
        let b = SampleStats {
            bsat_calls: 3,
            xor_clauses_added: 4,
            xor_vars_total: 6,
            wall_time: Duration::from_millis(7),
            solver_propagations: 11,
            solver_conflicts: 2,
        };
        a.accumulate(&b);
        assert_eq!(a.bsat_calls, 4);
        assert_eq!(a.xor_clauses_added, 6);
        assert_eq!(a.xor_vars_total, 16);
        assert_eq!(a.wall_time, Duration::from_millis(12));
        assert_eq!(a.solver_propagations, 111);
        assert_eq!(a.solver_conflicts, 3);
    }

    #[test]
    fn outcome_success_reflects_witness_presence() {
        let success = SampleOutcome {
            witness: Some(Model::new(vec![true])),
            stats: SampleStats::default(),
        };
        let failure = SampleOutcome {
            witness: None,
            stats: SampleStats::default(),
        };
        assert!(success.is_success());
        assert!(!failure.is_success());
    }
}
