//! Workspace facade for the UniGen reproduction (DAC 2014).
//!
//! This thin crate exists to host the workspace-level integration tests
//! (`tests/*.rs`) and runnable examples (`examples/*.rs`); the actual
//! implementation lives in the `crates/` members. For convenience it
//! re-exports each member crate under a short alias, so exploratory code can
//! depend on `unigen-repro` alone:
//!
//! | Alias | Crate | Role |
//! |-------|-------|------|
//! | [`cnf`] | `unigen-cnf` | formulas, literals, DIMACS |
//! | [`hashing`] | `unigen-hashing` | the `H_xor(n, m, 3)` hash family |
//! | [`satsolver`] | `unigen-satsolver` | CDCL + xor solver, `BSAT` |
//! | [`counting`] | `unigen-counting` | exact and approximate counters |
//! | [`circuit`] | `unigen-circuit` | circuit benchmarks, Tseitin encoding |
//! | [`core`] | `unigen` | UniGen, UniWit, XorSample', US, stats |
//!
//! See the repository `README.md` for the paper-to-crate map and quick
//! start.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use unigen as core;
pub use unigen_circuit as circuit;
pub use unigen_cnf as cnf;
pub use unigen_counting as counting;
pub use unigen_hashing as hashing;
pub use unigen_satsolver as satsolver;
